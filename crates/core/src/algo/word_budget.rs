//! Word-budget summaries — the paper's §7 future-work reformulation.
//!
//! "The selection of an appropriate value for l is an interesting problem;
//! a natural approach is to select l based on the amount of attributes or
//! words it will result, e.g. 20 attributes or 50 words. However, this
//! approach results to the reformulation of the problem."
//!
//! The reformulated problem is a *cost-budgeted* variant of Problem 1: each
//! tuple `t_i` carries a display cost `c(t_i)` (its rendered word count),
//! and we seek the connected, root-containing subtree maximizing `Im(S)`
//! subject to `Σ c(t_i) ≤ W`. The knapsack-merge tree DP generalizes
//! directly: tables are indexed by cost instead of cardinality
//! (`O(n · W²)` worst case).

use crate::algo::SizeLResult;
use crate::os::{Os, OsNodeId};

const NEG: f64 = f64::NEG_INFINITY;

/// Optimal budgeted summary: maximize importance subject to a total
/// node-cost budget. Costs must be positive integers.
#[derive(Clone, Copy, Debug, Default)]
pub struct WordBudgetDp;

impl WordBudgetDp {
    /// Computes the optimal summary under `budget`, with `cost(node)`
    /// giving each node's display cost. Returns an empty selection when
    /// even the root exceeds the budget.
    pub fn compute(&self, os: &Os, budget: usize, cost: &dyn Fn(OsNodeId) -> usize) -> SizeLResult {
        if os.is_empty() || budget == 0 {
            return SizeLResult { selected: Vec::new(), importance: 0.0 };
        }
        let n = os.len();
        let costs: Vec<usize> = (0..n)
            .map(|i| {
                let c = cost(OsNodeId(i as u32));
                assert!(c > 0, "node costs must be positive");
                c
            })
            .collect();
        if costs[0] > budget {
            return SizeLResult { selected: Vec::new(), importance: 0.0 };
        }

        // Path cost from the root to each node: a node is usable only if
        // its whole path fits the budget (connectivity requirement).
        let mut path_cost = vec![0usize; n];
        for (id, node) in os.iter() {
            let i = id.index();
            path_cost[i] = costs[i] + node.parent.map_or(0, |p| path_cost[p.index()]);
        }
        // cap[v]: the largest budget v's subtree can meaningfully consume.
        let cap: Vec<usize> = (0..n)
            .map(|i| {
                if path_cost[i] > budget {
                    0
                } else {
                    // Budget left after paying for the path above v, plus
                    // v itself is inside its own table.
                    budget - (path_cost[i] - costs[i])
                }
            })
            .collect();

        // dp[v][w] = best importance of a subtree rooted at v with total
        // cost exactly <= w handled via "cost w used" tables; index 0 = not
        // selected.
        let mut dp: Vec<Vec<f64>> = vec![Vec::new(); n];
        for i in (0..n).rev() {
            if cap[i] == 0 {
                continue;
            }
            let v = OsNodeId(i as u32);
            let cap_v = cap[i];
            let mut f = vec![NEG; cap_v + 1];
            if costs[i] <= cap_v {
                f[costs[i]] = os.node(v).weight;
            }
            for &c in os.children(v) {
                if cap[c.index()] == 0 {
                    continue;
                }
                f = merge_cost(&f, &dp[c.index()], cap_v);
            }
            f[0] = 0.0;
            dp[i] = f;
        }

        // Best achievable at the root within budget.
        let root_table = &dp[0];
        let (best_w, _) = root_table
            .iter()
            .enumerate()
            .take(budget + 1)
            .filter(|(w, &v)| *w > 0 && v != NEG)
            .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(w, &v)| (w, v))
            .unwrap_or((0, 0.0));
        if best_w == 0 {
            return SizeLResult { selected: Vec::new(), importance: 0.0 };
        }
        let mut selected = Vec::new();
        reconstruct_cost(os, OsNodeId(0), best_w, &costs, &cap, &dp, &mut selected);
        SizeLResult::from_selection(os, selected)
    }
}

/// Cost-indexed knapsack merge.
fn merge_cost(f: &[f64], child: &[f64], cap_v: usize) -> Vec<f64> {
    let mut g = vec![NEG; cap_v + 1];
    for (w, &fw) in f.iter().enumerate() {
        if fw == NEG {
            continue;
        }
        let j_max = (cap_v - w).min(child.len() - 1);
        for (j, &cj) in child.iter().enumerate().take(j_max + 1) {
            if cj == NEG {
                continue;
            }
            let cand = fw + cj;
            if cand > g[w + j] {
                g[w + j] = cand;
            }
        }
    }
    g
}

fn reconstruct_cost(
    os: &Os,
    v: OsNodeId,
    w: usize,
    costs: &[usize],
    cap: &[usize],
    dp: &[Vec<f64>],
    out: &mut Vec<OsNodeId>,
) {
    if w == 0 {
        return;
    }
    out.push(v);
    let vi = v.index();
    let children: Vec<OsNodeId> =
        os.children(v).iter().copied().filter(|c| cap[c.index()] > 0).collect();
    // Rebuild stages deterministically, then split.
    let cap_v = cap[vi];
    let mut stages: Vec<Vec<f64>> = Vec::with_capacity(children.len() + 1);
    let mut f = vec![NEG; cap_v + 1];
    if costs[vi] <= cap_v {
        f[costs[vi]] = os.node(v).weight;
    }
    stages.push(f.clone());
    for &c in &children {
        f = merge_cost(&f, &dp[c.index()], cap_v);
        stages.push(f.clone());
    }
    let mut need = w;
    for i in (0..children.len()).rev() {
        let c = children[i];
        let child_dp = &dp[c.index()];
        let prev = &stages[i];
        let cur = stages[i + 1][need];
        let mut found = None;
        for j in 0..=need.min(child_dp.len() - 1) {
            if need - j >= prev.len() {
                continue;
            }
            let (a, b) = (prev[need - j], child_dp[j]);
            if a == NEG || b == NEG {
                continue;
            }
            if a + b == cur {
                found = Some(j);
                break;
            }
        }
        let j = found.expect("budget DP reconstruction must find a split");
        if j > 0 {
            reconstruct_cost(os, c, j, costs, cap, dp, out);
        }
        need -= j;
    }
    debug_assert_eq!(need, costs[vi], "after children, exactly v's own cost remains");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{DpKnapsack, SizeLAlgorithm};
    use crate::os::{figure4_tree, figure56_tree};
    use sizel_util::prng::Prng;

    /// With unit costs, the budget-W summary equals the size-W OS.
    #[test]
    fn unit_costs_reduce_to_size_l() {
        let unit = |_: OsNodeId| 1usize;
        for os in [figure4_tree(), figure56_tree(55.0), figure56_tree(12.0)] {
            for w in 1..=os.len() {
                let budget = WordBudgetDp.compute(&os, w, &unit);
                let sized = DpKnapsack.compute(&os, w);
                assert!(
                    (budget.importance - sized.importance).abs() < 1e-9,
                    "w={w}: {} vs {}",
                    budget.importance,
                    sized.importance
                );
            }
        }
    }

    #[test]
    fn respects_budget_and_connectivity() {
        let mut rng = Prng::new(0x33);
        for _ in 0..30 {
            let n = rng.range(1, 30);
            let os = crate::algo::dp::tests::random_tree(&mut rng, n);
            let costs: Vec<usize> = (0..n).map(|_| rng.range(1, 6)).collect();
            let cost_fn = |id: OsNodeId| costs[id.index()];
            for budget in [1usize, 3, 8, 20, 100] {
                let r = WordBudgetDp.compute(&os, budget, &cost_fn);
                let total: usize = r.selected.iter().map(|&id| costs[id.index()]).sum();
                assert!(total <= budget, "cost {total} exceeds budget {budget}");
                if !r.selected.is_empty() {
                    assert!(os.is_valid_selection(&r.selected));
                }
            }
        }
    }

    #[test]
    fn expensive_root_yields_empty() {
        let os = figure4_tree();
        let r = WordBudgetDp.compute(&os, 3, &|_| 5usize);
        assert!(r.is_empty());
    }

    #[test]
    fn prefers_cheap_informative_nodes() {
        //      0 (w=10, c=1)
        //     /            \
        //  1 (w=50, c=10)  2 (w=45, c=2)
        let os = Os::synthetic(&[None, Some(0), Some(0)], &[10.0, 50.0, 45.0]);
        let costs = [1usize, 10, 2];
        let r = WordBudgetDp.compute(&os, 5, &|id: OsNodeId| costs[id.index()]);
        // Budget 5 cannot afford node 1 (cost 11 with root); picks {0, 2}.
        assert_eq!(r.selected, vec![OsNodeId(0), OsNodeId(2)]);
        assert!((r.importance - 55.0).abs() < 1e-12);
        // Budget 11 can: {0, 1} = 60 beats {0, 2} = 55 and {0,1,2} needs 13.
        let r = WordBudgetDp.compute(&os, 11, &|id: OsNodeId| costs[id.index()]);
        assert_eq!(r.selected, vec![OsNodeId(0), OsNodeId(1)]);
    }

    #[test]
    fn brute_force_cross_check_on_random_trees() {
        // Exhaustive check against enumerating all connected subsets.
        let mut rng = Prng::new(0x44);
        for _ in 0..20 {
            let n = rng.range(1, 12);
            let os = crate::algo::dp::tests::random_tree(&mut rng, n);
            let costs: Vec<usize> = (0..n).map(|_| rng.range(1, 4)).collect();
            let budget = rng.range(1, 16);
            let r = WordBudgetDp.compute(&os, budget, &|id: OsNodeId| costs[id.index()]);
            // Brute force over all connected subsets via bitmask (n <= 12).
            let mut best = 0.0f64;
            for mask in 0u32..(1 << n) {
                if mask & 1 == 0 && mask != 0 {
                    continue; // must contain root if non-empty
                }
                let sel: Vec<OsNodeId> =
                    (0..n).filter(|&i| mask >> i & 1 == 1).map(|i| OsNodeId(i as u32)).collect();
                if !os.is_valid_selection(&sel) {
                    continue;
                }
                let total: usize = sel.iter().map(|&id| costs[id.index()]).sum();
                if total > budget {
                    continue;
                }
                best = best.max(os.weight_of(&sel));
            }
            assert!(
                (r.importance - best).abs() < 1e-9,
                "n={n} budget={budget}: dp {} vs brute {}",
                r.importance,
                best
            );
        }
    }
}
