//! Algorithm 3: Update Top-Path-l, plus the paper's `s(v)` optimization.
//!
//! The algorithm repeatedly selects the path `p_i` (from a current forest
//! root down to some node) with the largest *average importance per tuple*
//! `AI(p_i)`, appends it to the size-l OS, removes it from the forest, and
//! updates the averages of the subtrees that became new forest roots.
//! Selecting whole paths lets deep high-importance nodes pull their cheap
//! ancestors in, which Bottom-Up cannot do (Figure 6).

use crate::algo::{AlgoScratch, SizeLAlgorithm, SizeLResult};
use crate::os::{Os, OsNodeId};

/// Algorithm 3, the reference version: after each selection the affected
/// subtree averages are recomputed by DFS (`O(n·l)` worst case, as the
/// paper states).
#[derive(Clone, Copy, Debug, Default)]
pub struct TopPath;

/// Algorithm 3 with the §5.2 optimization: precompute for every node `v`
/// the node `s(v)` with the highest AI in `v`'s subtree once, and after
/// each selection only re-evaluate the `s(v)` candidates of the new forest
/// roots. The paper argues the subtree argmax is stable under ancestor
/// changes; that holds when relative AI order is preserved, which path
/// removal *usually* but not always maintains — so this variant is a
/// faster heuristic whose quality is compared in the ablation bench.
#[derive(Clone, Copy, Debug, Default)]
pub struct TopPathOpt;

/// Shared edge-case handling; returns `Some` when trivially resolved.
fn trivial(os: &Os, l: usize) -> Option<SizeLResult> {
    if os.is_empty() || l == 0 {
        return Some(SizeLResult { selected: Vec::new(), importance: 0.0 });
    }
    if l >= os.len() {
        let all: Vec<OsNodeId> = os.iter().map(|(id, _)| id).collect();
        return Some(SizeLResult::from_selection(os, all));
    }
    None
}

/// Collects the path from forest root `r` down to `t` (inclusive) into
/// the reusable `path` buffer.
fn path_of_into(os: &Os, r: OsNodeId, t: OsNodeId, path: &mut Vec<OsNodeId>) {
    path.clear();
    path.push(t);
    let mut cur = t;
    while cur != r {
        cur = os.node(cur).parent.expect("t lies in the subtree of r");
        path.push(cur);
    }
    path.reverse();
}

impl SizeLAlgorithm for TopPath {
    fn name(&self) -> &'static str {
        "Top-Path"
    }

    fn compute(&self, os: &Os, l: usize) -> SizeLResult {
        self.compute_pooled(os, l, &mut AlgoScratch::new())
    }

    fn compute_pooled(&self, os: &Os, l: usize, scratch: &mut AlgoScratch) -> SizeLResult {
        if let Some(r) = trivial(os, l) {
            return r;
        }
        let n = os.len();
        let AlgoScratch { alive, roots, stack, path, .. } = scratch;
        alive.clear();
        alive.resize(n, true);
        roots.clear();
        roots.push(os.root());
        let mut selected: Vec<OsNodeId> = Vec::with_capacity(l);

        while selected.len() < l {
            // Find the highest-AI node across all forest trees (ties:
            // smaller node id, for determinism).
            let mut best: Option<(f64, OsNodeId, OsNodeId)> = None; // (ai, node, root)
            for &r in roots.iter() {
                // Iterative DFS carrying (node, path_sum, path_len).
                stack.clear();
                stack.push((r, 0.0f64, 0u32));
                while let Some((v, sum, len)) = stack.pop() {
                    let s = sum + os.node(v).weight;
                    let c = len + 1;
                    let ai = s / c as f64;
                    let better = match &best {
                        None => true,
                        Some((bai, bn, _)) => ai > *bai || (ai == *bai && v < *bn),
                    };
                    if better {
                        best = Some((ai, v, r));
                    }
                    for &ch in os.children(v) {
                        if alive[ch.index()] {
                            stack.push((ch, s, c));
                        }
                    }
                }
            }
            let (_, t, r) = best.expect("forest is non-empty while selected < l <= n");
            path_of_into(os, r, t, path);
            let take = (l - selected.len()).min(path.len());
            for &v in &path[..take] {
                alive[v.index()] = false;
                selected.push(v);
            }
            roots.retain(|&x| x != r);
            for &v in &path[..take] {
                for &ch in os.children(v) {
                    if alive[ch.index()] {
                        roots.push(ch);
                    }
                }
            }
        }
        SizeLResult::from_selection(os, selected)
    }
}

impl SizeLAlgorithm for TopPathOpt {
    fn name(&self) -> &'static str {
        "Top-Path(s(v))"
    }

    fn compute(&self, os: &Os, l: usize) -> SizeLResult {
        self.compute_pooled(os, l, &mut AlgoScratch::new())
    }

    fn compute_pooled(&self, os: &Os, l: usize, scratch: &mut AlgoScratch) -> SizeLResult {
        if let Some(r) = trivial(os, l) {
            return r;
        }
        let n = os.len();
        let AlgoScratch { alive, path, entries, f64a: ai0, f64b: sum, ids: s_of, .. } = scratch;

        // Initial AI (w.r.t. the OS root) for every node, then s(v) =
        // argmax AI over v's subtree, computed children-first.
        ai0.clear();
        ai0.resize(n, 0.0);
        sum.clear();
        sum.resize(n, 0.0);
        for (id, node) in os.iter() {
            let i = id.index();
            let (s, d) = match node.parent {
                None => (node.weight, 1),
                Some(p) => (sum[p.index()] + node.weight, node.depth + 1),
            };
            sum[i] = s;
            ai0[i] = s / d as f64;
        }
        s_of.clear();
        s_of.resize(n, 0);
        for i in (0..n).rev() {
            let mut best = i as u32;
            for &c in os.children(OsNodeId(i as u32)) {
                let cand = s_of[c.index()];
                if ai0[cand as usize] > ai0[best as usize]
                    || (ai0[cand as usize] == ai0[best as usize] && cand < best)
                {
                    best = cand;
                }
            }
            s_of[i] = best;
        }

        // AI of s(v) relative to forest root v: walk the path v..s(v).
        let s_of = &*s_of;
        let recompute = |v: OsNodeId| -> (f64, OsNodeId) {
            let t = OsNodeId(s_of[v.index()]);
            let mut cur = t;
            let mut total = 0.0;
            let mut count = 0u32;
            loop {
                total += os.node(cur).weight;
                count += 1;
                if cur == v {
                    break;
                }
                cur = os.node(cur).parent.expect("s(v) lies in v's subtree");
            }
            (total / count as f64, t)
        };

        alive.clear();
        alive.resize(n, true);
        let mut selected: Vec<OsNodeId> = Vec::with_capacity(l);
        // (candidate ai, candidate node, forest root)
        entries.clear();
        {
            let (ai, t) = recompute(os.root());
            entries.push((ai, t, os.root()));
        }

        while selected.len() < l {
            let (pos, _) = entries
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| {
                    a.0.total_cmp(&b.0).then_with(|| b.1.cmp(&a.1)) // ties: smaller node id
                })
                .expect("forest is non-empty while selected < l <= n");
            let (_, t, r) = entries.swap_remove(pos);
            path_of_into(os, r, t, path);
            let take = (l - selected.len()).min(path.len());
            for &v in &path[..take] {
                alive[v.index()] = false;
                selected.push(v);
            }
            for &v in &path[..take] {
                for &ch in os.children(v) {
                    if alive[ch.index()] {
                        let (ai, cand) = recompute(ch);
                        entries.push((ai, cand, ch));
                    }
                }
            }
        }
        SizeLResult::from_selection(os, selected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dp::DpKnapsack;
    use crate::os::{figure56_tree, Os};
    use sizel_util::prng::Prng;

    #[test]
    fn figure6_walkthrough_size5() {
        // Figure 6 uses the w12 = 12 variant. Expected size-5 result:
        // paper nodes {1,5,6,11,13} = ids {0,4,5,10,12}, importance 235.
        let os = figure56_tree(12.0);
        let r = TopPath.compute(&os, 5);
        let expect: Vec<OsNodeId> = [0u32, 4, 5, 10, 12].iter().map(|&i| OsNodeId(i)).collect();
        assert_eq!(r.selected, expect);
        assert!((r.importance - 235.0).abs() < 1e-12);
    }

    #[test]
    fn figure6_size3_takes_path_prefix() {
        // §5.2: "the size-3 OS will have nodes 1, 5 and 11 instead of 1, 5
        // and 6" — the path to node 13 is cut to its top node.
        let os = figure56_tree(12.0);
        let r = TopPath.compute(&os, 3);
        let expect: Vec<OsNodeId> = [0u32, 4, 10].iter().map(|&i| OsNodeId(i)).collect();
        assert_eq!(r.selected, expect);
        assert!((r.importance - 140.0).abs() < 1e-12);
        // And it is suboptimal, as the paper notes ({1,5,6} = 145).
        let opt = DpKnapsack.compute(&os, 3);
        assert!((opt.importance - 145.0).abs() < 1e-12);
    }

    #[test]
    fn opt_variant_matches_reference_on_figure6() {
        let os = figure56_tree(12.0);
        for l in 1..=os.len() {
            let a = TopPath.compute(&os, l);
            let b = TopPathOpt.compute(&os, l);
            assert_eq!(a.selected, b.selected, "l={l}");
        }
    }

    #[test]
    fn always_valid_and_exact_size() {
        let mut rng = Prng::new(0x7F);
        for _ in 0..40 {
            let n = rng.range(1, 60);
            let os = crate::algo::dp::tests::random_tree(&mut rng, n);
            for l in [0, 1, 2, n / 2, n.saturating_sub(1), n, n + 3] {
                for algo in [&TopPath as &dyn SizeLAlgorithm, &TopPathOpt] {
                    let r = algo.compute(&os, l);
                    assert_eq!(r.len(), l.min(n), "{} l={l}", algo.name());
                    assert!(os.is_valid_selection(&r.selected));
                    let opt = DpKnapsack.compute(&os, l);
                    assert!(r.importance <= opt.importance + 1e-9);
                }
            }
        }
    }

    #[test]
    fn pulls_deep_heavy_nodes_that_bottom_up_misses() {
        // The Figure-5 failure mode in miniature: Bottom-Up destroys the
        // good pair (3,4) by pruning its cheap member 4 first, while
        // Top-Path's path *average* keeps the pair together.
        //   0(10) -> 1(30) -> 2(60)
        //         -> 3(55) -> 4(40)          l = 3
        let os = Os::synthetic(
            &[None, Some(0), Some(1), Some(0), Some(3)],
            &[10.0, 30.0, 60.0, 55.0, 40.0],
        );
        let tp = TopPath.compute(&os, 3);
        let expect: Vec<OsNodeId> = [0u32, 3, 4].iter().map(|&i| OsNodeId(i)).collect();
        assert_eq!(tp.selected, expect);
        assert!((tp.importance - 105.0).abs() < 1e-12);
        let bu = crate::algo::bottom_up::BottomUp.compute(&os, 3);
        assert!((bu.importance - 100.0).abs() < 1e-12, "Bottom-Up keeps {{0,1,2}}");
        assert!(bu.importance < tp.importance, "Top-Path wins on the pair");
        // And here Top-Path is optimal.
        let opt = DpKnapsack.compute(&os, 3);
        assert_eq!(opt.importance, tp.importance);
    }

    #[test]
    fn single_node_and_path_trees() {
        let os = Os::synthetic(&[None], &[3.0]);
        assert_eq!(TopPath.compute(&os, 1).selected, vec![OsNodeId(0)]);
        let os = Os::synthetic(&[None, Some(0), Some(1)], &[1.0, 2.0, 3.0]);
        for l in 1..=3 {
            let r = TopPath.compute(&os, l);
            assert_eq!(r.len(), l);
            // On a path, any connected root-set is a prefix.
            let expect: Vec<OsNodeId> = (0..l as u32).map(OsNodeId).collect();
            assert_eq!(r.selected, expect);
        }
    }
}
