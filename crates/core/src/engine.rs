//! The end-to-end engine: database in, ranked size-l OSs out.
//!
//! `SizeLEngine::build` wires the full stack once — schema graph, data
//! graph, global importance, one GDS(θ) per DS relation (with `max/mmax`
//! stats), keyword index — and `query` then serves keyword queries exactly
//! like the paper's system: find the `t_DS` tuples matching all keywords,
//! generate each one's (prelim or complete) OS, size-l it, and return the
//! summaries ranked by the DS tuple's global importance.
//!
//! The engine is **epoch-aware**: [`SizeLEngine::apply`] accepts row
//! inserts and keeps every derived structure synchronized, either
//! incrementally ([`RefreshPolicy::Incremental`] — estimated score
//! spliced into the rank vector, sorted postings binary-maintained, the
//! FK-order token re-stamped so the prefix-scan fast paths stay live) or
//! exactly ([`RefreshPolicy::Exact`] — the escape hatch that re-derives
//! everything, byte-identical to a fresh [`SizeLEngine::build`] over the
//! mutated database). [`SizeLEngine::epoch`] exposes the database's
//! mutation epoch for cache keying (the serving layer keys its summary
//! cache by it).

use std::sync::Arc;

use sizel_disk::{PagedStore, Wal};
use sizel_graph::{DataGraph, Gds, GdsConfig, MnLinkId, SchemaGraph};
use sizel_rank::{compute, AuthorityGraph, RankConfig, RankScores};
use sizel_storage::{Database, Epoch, StorageError, TableId, TupleRef, Value};

use crate::durability::{
    decode_batch, encode_batch, DiskTier, DiskTierConfig, DiskTierStats, RecoveryReport,
};

use crate::algo::{AlgoKind, SizeLResult};
use crate::keyword::KeywordIndex;
use crate::os::{Os, OsArenaPool};
use crate::osgen::{generate_os_pooled, OsContext, OsSource};
use crate::prelim::generate_prelim_pooled;
use crate::render::{render_os, RenderOptions};

/// Engine construction parameters.
#[derive(Debug)]
pub struct EngineConfig {
    /// DS relations (by table name) with their GDS configurations.
    pub ds_relations: Vec<(String, GdsConfig)>,
    /// Affinity threshold θ used to restrict each GDS (paper default 0.7).
    pub theta: f64,
    /// Global-importance solver configuration.
    pub rank: RankConfig,
    /// Maximum number of DSs materialized per query.
    pub max_results: usize,
}

impl EngineConfig {
    /// A config for the given DS relations with default everything else.
    pub fn new(ds_relations: Vec<(String, GdsConfig)>) -> Self {
        EngineConfig { ds_relations, theta: 0.7, rank: RankConfig::default(), max_results: 10 }
    }
}

/// How multi-DS results are ordered — the paper ranks by the DS tuple's
/// global importance; ranking by the summary's `Im(S)` is the "combined
/// size-l and top-k ranking of OSs" flagged as future work in §7.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum ResultRanking {
    /// By `Im(t_DS)` (the paper's ordering).
    #[default]
    DsGlobalImportance,
    /// By the computed summary's total importance `Im(S)`.
    SummaryImportance,
}

/// Per-query options. `Eq`/`Hash` so a serving layer can deduplicate
/// identical requests within a batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct QueryOptions {
    /// Summary size l.
    pub l: usize,
    /// Size-l algorithm.
    pub algo: AlgoKind,
    /// Tuple source for OS generation.
    pub source: OsSource,
    /// Generate a prelim-l OS instead of the complete OS (§5.3; "the use
    /// of prelim-l OSs is constantly a better choice", §6.3).
    pub prelim: bool,
    /// Result ordering.
    pub ranking: ResultRanking,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            l: 15,
            algo: AlgoKind::TopPath,
            source: OsSource::DataGraph,
            prelim: true,
            ranking: ResultRanking::default(),
        }
    }
}

/// One ranked result of a keyword query.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// The data subject tuple.
    pub tds: TupleRef,
    /// Display text of the DS tuple (first searchable/display column).
    pub ds_label: String,
    /// Global importance of `t_DS` (the ranking key).
    pub global_score: f64,
    /// Size of the OS the summary was computed from (prelim or complete).
    pub input_os_size: usize,
    /// The size-l selection and its importance.
    pub result: SizeLResult,
    /// The materialized size-l OS.
    pub summary: Os,
}

/// How [`SizeLEngine::apply`] refreshes the derived state after a
/// mutation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum RefreshPolicy {
    /// Maintain everything in place: estimated global importance for the
    /// mutated row (`sizel_rank::estimate_appended_score` for inserts,
    /// `sizel_rank::estimate_updated_score_with` for updates, each with
    /// its documented approximation bound), sorted postings
    /// binary-maintained (inserts/updates) or tombstoned-then-compacted
    /// (deletes), keyword postings retokenized, and the FK-order token
    /// re-stamped — no power iteration, no GDS/keyword rebuild. After
    /// update/delete churn, [`SizeLEngine::reiterate`] recovers
    /// near-exact scores with a few bounded power sweeps instead of the
    /// exact escape hatch.
    #[default]
    Incremental,
    /// The exact escape hatch: re-derive everything (power iteration,
    /// full importance-order install, GDS stats, keyword index) over the
    /// mutated database. Byte-identical to a fresh [`SizeLEngine::build`].
    Exact,
}

/// One write operation against a live engine — an insert, an in-place
/// update, or a delete. Constructed via [`Mutation::insert`],
/// [`Mutation::update`], or [`Mutation::delete`]; the policy defaults to
/// incremental and can be switched with [`Mutation::exact`].
#[derive(Clone, Debug, PartialEq)]
pub struct Mutation {
    /// Target table name.
    pub table: String,
    /// The operation.
    pub op: MutationOp,
    /// Refresh strategy for the derived state.
    pub policy: RefreshPolicy,
}

/// The three mutation kinds flowing through [`SizeLEngine::apply`].
#[derive(Clone, Debug, PartialEq)]
pub enum MutationOp {
    /// Append a new row (validated like [`Database::insert`], plus FK
    /// existence against the catalog before anything is mutated).
    Insert {
        /// The new row's values.
        values: Vec<Value>,
    },
    /// Replace the values of the live row with primary key `pk`; its
    /// sorted-posting entries reposition to the updated score. The
    /// primary key itself is immutable
    /// ([`StorageError::ImmutablePrimaryKey`]).
    Update {
        /// Primary key of the row to update.
        pk: i64,
        /// The full replacement values (same arity as the schema).
        values: Vec<Value>,
    },
    /// Tombstone the live row with primary key `pk` (storage reclaims the
    /// posting entries at the compaction threshold). The model is
    /// RESTRICT, not CASCADE: a row still referenced by live rows is
    /// rejected with [`StorageError::RestrictedDelete`] — a dangling
    /// reference would poison the data graph.
    Delete {
        /// Primary key of the row to delete.
        pk: i64,
    },
}

impl Mutation {
    /// An insert refreshed incrementally.
    pub fn insert(table: impl Into<String>, values: Vec<Value>) -> Self {
        Mutation {
            table: table.into(),
            op: MutationOp::Insert { values },
            policy: RefreshPolicy::Incremental,
        }
    }

    /// An in-place update refreshed incrementally.
    pub fn update(table: impl Into<String>, pk: i64, values: Vec<Value>) -> Self {
        Mutation {
            table: table.into(),
            op: MutationOp::Update { pk, values },
            policy: RefreshPolicy::Incremental,
        }
    }

    /// A delete refreshed incrementally.
    pub fn delete(table: impl Into<String>, pk: i64) -> Self {
        Mutation {
            table: table.into(),
            op: MutationOp::Delete { pk },
            policy: RefreshPolicy::Incremental,
        }
    }

    /// Switches this mutation to the exact-recompute escape hatch.
    #[must_use]
    pub fn exact(mut self) -> Self {
        self.policy = RefreshPolicy::Exact;
        self
    }
}

/// The retained authority-graph builder (see [`SizeLEngine::build`]).
type GaBuilder = Box<dyn Fn(&Database, &SchemaGraph, &DataGraph) -> AuthorityGraph + Send + Sync>;

/// Everything derived from the database: rebuilt wholesale by the exact
/// refresh path, built once by [`SizeLEngine::build`].
struct Derived {
    dg: DataGraph,
    authority: AuthorityGraph,
    scores: RankScores,
    gds_by_table: Vec<Option<Gds>>,
    links_by_table: Vec<Option<Vec<Option<MnLinkId>>>>,
    kw: KeywordIndex,
}

/// The wired-up engine. Owns the database and every derived structure.
pub struct SizeLEngine {
    db: Database,
    sg: SchemaGraph,
    dg: DataGraph,
    authority: AuthorityGraph,
    scores: RankScores,
    gds_by_table: Vec<Option<Gds>>,
    /// Per-DS-table resolved M:N link tables, precomputed at build so
    /// [`SizeLEngine::context`] (and through it every `summarize`) stops
    /// allocating and re-scanning links per query.
    links_by_table: Vec<Option<Vec<Option<MnLinkId>>>>,
    kw: KeywordIndex,
    /// The GA builder, retained so the exact refresh path can re-derive
    /// the authority graph over the mutated database.
    ga: GaBuilder,
    cfg: EngineConfig,
    /// The optional disk tier: WAL-backed batch durability plus paged
    /// posting segments (see [`crate::durability`]).
    disk: Option<DiskTier>,
}

impl SizeLEngine {
    /// Builds the engine: validates FKs, computes global importance with
    /// the GA produced by `ga`, builds each DS relation's GDS(θ) and the
    /// keyword index, and installs the importance-sorted FK order so
    /// Database-source TOP-l probes run as prefix scans. The `ga` builder
    /// is retained for [`SizeLEngine::apply`]'s exact refresh path.
    pub fn build(
        mut db: Database,
        ga: impl Fn(&Database, &SchemaGraph, &DataGraph) -> AuthorityGraph + Send + Sync + 'static,
        cfg: EngineConfig,
    ) -> Result<Self, StorageError> {
        db.validate_foreign_keys()?;
        let sg = SchemaGraph::from_database(&db);
        let ga: GaBuilder = Box::new(ga);
        let derived = Self::derive(&mut db, &sg, ga.as_ref(), &cfg)?;
        let Derived { dg, authority, scores, gds_by_table, links_by_table, kw } = derived;
        Ok(SizeLEngine {
            db,
            sg,
            dg,
            authority,
            scores,
            gds_by_table,
            links_by_table,
            kw,
            ga,
            cfg,
            disk: None,
        })
    }

    /// Computes every derived structure over `db` (which receives the
    /// importance-order install). Shared by [`SizeLEngine::build`] and
    /// the exact refresh of [`SizeLEngine::apply`] — the two are
    /// byte-identical by construction.
    fn derive(
        db: &mut Database,
        sg: &SchemaGraph,
        ga: &(dyn Fn(&Database, &SchemaGraph, &DataGraph) -> AuthorityGraph + Send + Sync),
        cfg: &EngineConfig,
    ) -> Result<Derived, StorageError> {
        let dg = DataGraph::build(db, sg);
        let authority = ga(db, sg, &dg);
        let mut scores = compute(db, sg, &dg, &authority, &cfg.rank);
        sizel_rank::install_importance_order(db, &dg, &mut scores);

        let mut gds_by_table: Vec<Option<Gds>> = (0..db.table_count()).map(|_| None).collect();
        let mut links_by_table: Vec<Option<Vec<Option<MnLinkId>>>> =
            (0..db.table_count()).map(|_| None).collect();
        let mut ds_tables = Vec::with_capacity(cfg.ds_relations.len());
        for (name, gds_cfg) in &cfg.ds_relations {
            let tid = db.table_id(name)?;
            let mut gds = Gds::build(db, sg, gds_cfg, tid).restrict(cfg.theta);
            gds.set_stats(&scores.per_table_max);
            links_by_table[tid.index()] = Some(OsContext::resolve_links(&dg, &gds));
            gds_by_table[tid.index()] = Some(gds);
            ds_tables.push(tid);
        }
        let kw = KeywordIndex::build(db, &ds_tables);
        Ok(Derived { dg, authority, scores, gds_by_table, links_by_table, kw })
    }

    /// The database's mutation epoch — the version every query of this
    /// engine is answered at. Serving layers key caches by it; any
    /// [`SizeLEngine::apply`] advances it, so entries computed against
    /// superseded data are never served again.
    pub fn epoch(&self) -> Epoch {
        self.db.epoch()
    }

    /// Applies a mutation, keeping every derived structure synchronized
    /// (see [`RefreshPolicy`] for the incremental/exact trade). Returns
    /// the new epoch. On error nothing is mutated.
    ///
    /// With a disk tier attached ([`SizeLEngine::attach_disk`]), the
    /// mutation is first appended to the write-ahead log as a
    /// one-mutation batch record — redo durability: a crash after the
    /// append replays it on recovery.
    pub fn apply(&mut self, m: Mutation) -> Result<Epoch, StorageError> {
        self.log_batch(std::slice::from_ref(&m))?;
        self.apply_one(m)
    }

    /// [`SizeLEngine::apply`] minus the WAL append — the shared inner
    /// path, also used to re-apply decoded records during recovery
    /// (re-logging a replay would double every record).
    fn apply_one(&mut self, m: Mutation) -> Result<Epoch, StorageError> {
        match m.policy {
            RefreshPolicy::Exact => {
                let tid = self.db.table_id(&m.table)?;
                match m.op {
                    MutationOp::Insert { values } => {
                        self.validate_new_row_fks(tid, &values)?;
                        self.db.insert(&m.table, values)?;
                    }
                    MutationOp::Update { pk, values } => {
                        self.validate_new_row_fks(tid, &values)?;
                        self.db.update(&m.table, pk, values)?;
                    }
                    MutationOp::Delete { pk } => {
                        if let Some(rt) = self.db.find_referencer(tid, pk).map(str::to_owned) {
                            return Err(StorageError::RestrictedDelete {
                                table: m.table,
                                key: pk,
                                referencing_table: rt,
                            });
                        }
                        self.db.delete(&m.table, pk)?;
                    }
                }
                let derived = Self::derive(&mut self.db, &self.sg, self.ga.as_ref(), &self.cfg)?;
                let Derived { dg, authority, scores, gds_by_table, links_by_table, kw } = derived;
                self.dg = dg;
                self.authority = authority;
                self.scores = scores;
                self.gds_by_table = gds_by_table;
                self.links_by_table = links_by_table;
                self.kw = kw;
            }
            RefreshPolicy::Incremental => self.apply_incremental_run(vec![m])?,
        }
        Ok(self.db.epoch())
    }

    /// Applies a whole batch of mutations, amortizing the per-insert
    /// `O(|E|)` derived-state refresh across each run of incremental
    /// mutations: the run's rows are staged through the storage layer's
    /// [`sizel_storage::ScoredBatch`] (sorted-posting settlement: at most
    /// one re-sort per affected table), then **one** `DataGraph` rebuild,
    /// one batched rank splice, one stats/link/keyword refresh cover the
    /// whole run — where folding [`SizeLEngine::apply`] pays each of
    /// those per mutation. Exact-policy mutations flush the pending run
    /// and take the single-apply escape hatch, so arbitrary policy mixes
    /// are supported.
    ///
    /// The result is **byte-identical** to folding [`SizeLEngine::apply`]
    /// over `ms` in order — same summaries, same epochs, same paper-cost
    /// accounting (property-tested across churn thresholds) — because each
    /// staged mutation's score estimate is evaluated against exactly the
    /// state the fold would present: the database already holds the run's
    /// earlier rows, and the score resolver serves pre-batch tuples from
    /// the current vector and intra-batch tuples from their recorded
    /// estimates (what the fold's splice would have inserted).
    ///
    /// On error the batch stops at the failing mutation with every earlier
    /// mutation applied and the derived state synchronized — the same
    /// prefix the fold would leave.
    /// With a disk tier attached, the whole batch is one WAL record,
    /// appended (and fsynced per the tier's batching) before the first
    /// mutation settles.
    pub fn apply_batch(&mut self, ms: Vec<Mutation>) -> Result<Epoch, StorageError> {
        self.log_batch(&ms)?;
        self.apply_batch_inner(ms)
    }

    /// [`SizeLEngine::apply_batch`] minus the WAL append (the recovery
    /// replay path).
    fn apply_batch_inner(&mut self, ms: Vec<Mutation>) -> Result<Epoch, StorageError> {
        let mut run: Vec<Mutation> = Vec::new();
        for m in ms {
            match m.policy {
                RefreshPolicy::Incremental => run.push(m),
                RefreshPolicy::Exact => {
                    self.apply_incremental_run(std::mem::take(&mut run))?;
                    self.apply_one(m)?;
                }
            }
        }
        self.apply_incremental_run(run)?;
        Ok(self.db.epoch())
    }

    /// Appends `ms` as one checksummed WAL record if a disk tier is
    /// attached (no-op otherwise). Runs **before** any settlement: a
    /// failure here leaves the database untouched
    /// ([`StorageError::Durability`]), and a crash after it is replayed
    /// by the next [`SizeLEngine::attach_disk`].
    fn log_batch(&mut self, ms: &[Mutation]) -> Result<(), StorageError> {
        if let Some(disk) = &mut self.disk {
            let record = encode_batch(self.db.epoch().0, ms);
            disk.log_batch(&record).map_err(|e| StorageError::Durability(e.to_string()))?;
        }
        Ok(())
    }

    /// The shared incremental engine path: stages a run of mixed-kind
    /// mutations with estimated scores, then refreshes every derived
    /// structure once (see [`SizeLEngine::apply_batch`]). A run of one is
    /// exactly the classic incremental apply.
    ///
    /// Fold equivalence for the mixed kinds rests on three pieces of
    /// bookkeeping. The score resolver serves exactly the vector the fold
    /// would have built up at each step: pre-run tuples from the current
    /// scores, rows appended by this run from `appended`, and rows
    /// *updated* by this run from `overrides` (which wins over both — a
    /// row inserted then updated in one run must gather at its re-estimate,
    /// not its insert estimate). Keyword retokenization removes a row's
    /// old tokens at mutation time (captured before the staged update
    /// replaces the slot) and adds final tokens once at settlement;
    /// removal of never-indexed tokens is a no-op, which collapses any
    /// intra-run token history to the same final postings as the fold.
    /// And deletes drop the row from the pending keyword adds, so a row
    /// born and killed in one run is never indexed.
    fn apply_incremental_run(&mut self, run: Vec<Mutation>) -> Result<(), StorageError> {
        if run.is_empty() {
            return Ok(());
        }
        let old_len: Vec<usize> = self.db.tables().map(|(_, t)| t.len()).collect();
        let mut appended: Vec<Vec<f64>> = vec![Vec::new(); old_len.len()];
        let mut overrides: std::collections::HashMap<TupleRef, f64> =
            std::collections::HashMap::new();
        let mut spliced: Vec<(TupleRef, f64)> = Vec::with_capacity(run.len());
        let mut kw_add: Vec<TupleRef> = Vec::new();
        let mut landed = false;
        let mut batch = self.db.begin_scored_batch();
        let mut failure: Option<StorageError> = None;
        for m in run {
            let Mutation { table, op, .. } = m;
            let tid = match self.db.table_id(&table) {
                Ok(t) => t,
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            };
            match op {
                MutationOp::Insert { values } => {
                    if let Err(e) = self.validate_new_row_fks(tid, &values) {
                        failure = Some(e);
                        break;
                    }
                    let est = sizel_rank::estimate_appended_score_with(
                        &self.db,
                        &self.sg,
                        &self.authority,
                        &self.cfg.rank,
                        &|t: TupleRef| {
                            if let Some(&s) = overrides.get(&t) {
                                return s;
                            }
                            let old = old_len[t.table.index()];
                            if t.row.index() < old {
                                self.scores.global(self.dg.node_id(t))
                            } else {
                                appended[t.table.index()][t.row.index() - old]
                            }
                        },
                        tid,
                        &values,
                    );
                    match self.db.insert_scored_staged(&mut batch, &table, values, est) {
                        Ok(row) => {
                            let tref = TupleRef::new(tid, row);
                            appended[tid.index()].push(est);
                            spliced.push((tref, est));
                            kw_add.push(tref);
                            landed = true;
                        }
                        Err(e) => {
                            failure = Some(e);
                            break;
                        }
                    }
                }
                MutationOp::Update { pk, values } => {
                    if let Err(e) = self.validate_new_row_fks(tid, &values) {
                        failure = Some(e);
                        break;
                    }
                    let Some(row) = self.db.table(tid).by_pk(pk) else {
                        failure = Some(StorageError::MissingRow { table, key: pk });
                        break;
                    };
                    let tref = TupleRef::new(tid, row);
                    let old_values: Vec<Value> = {
                        let t = self.db.table(tid);
                        (0..t.schema.arity()).map(|c| t.value(row, c).clone()).collect()
                    };
                    let est = sizel_rank::estimate_updated_score_with(
                        &self.db,
                        &self.sg,
                        &self.authority,
                        &self.cfg.rank,
                        &|t: TupleRef| {
                            if let Some(&s) = overrides.get(&t) {
                                return s;
                            }
                            let old = old_len[t.table.index()];
                            if t.row.index() < old {
                                self.scores.global(self.dg.node_id(t))
                            } else {
                                appended[t.table.index()][t.row.index() - old]
                            }
                        },
                        tid,
                        &old_values,
                        &values,
                    );
                    match self.db.update_scored_staged(&mut batch, &table, pk, values, est) {
                        Ok(_) => {
                            self.kw.remove_row(tid, row, &self.db.table(tid).schema, &old_values);
                            overrides.insert(tref, est);
                            if !kw_add.contains(&tref) {
                                kw_add.push(tref);
                            }
                            landed = true;
                        }
                        Err(e) => {
                            failure = Some(e);
                            break;
                        }
                    }
                }
                MutationOp::Delete { pk } => {
                    if let Some(rt) = self.db.find_referencer(tid, pk).map(str::to_owned) {
                        failure = Some(StorageError::RestrictedDelete {
                            table,
                            key: pk,
                            referencing_table: rt,
                        });
                        break;
                    }
                    let Some(row) = self.db.table(tid).by_pk(pk) else {
                        failure = Some(StorageError::MissingRow { table, key: pk });
                        break;
                    };
                    let tref = TupleRef::new(tid, row);
                    let old_values: Vec<Value> = {
                        let t = self.db.table(tid);
                        (0..t.schema.arity()).map(|c| t.value(row, c).clone()).collect()
                    };
                    match self.db.delete_scored_staged(&mut batch, &table, pk) {
                        Ok(_) => {
                            self.kw.remove_row(tid, row, &self.db.table(tid).schema, &old_values);
                            kw_add.retain(|&t| t != tref);
                            landed = true;
                        }
                        Err(e) => {
                            failure = Some(e);
                            break;
                        }
                    }
                }
            }
        }
        self.db.finish_scored_batch(batch);
        if landed {
            // Any landed mutation invalidates the adjacency index: inserts
            // shift dense node ids, updates re-home FK edges, deletes
            // detach them. One rebuild covers the whole run — the O(|E|)
            // linear part of an incremental apply, amortized here where
            // the fold pays it per mutation (and what both avoid is the
            // power iteration: hundreds of O(|E|) sweeps).
            self.dg = DataGraph::build(&self.db, &self.sg);
            if spliced.is_empty() {
                // Updates and deletes keep every node id; only adopt the
                // re-stamped order token.
                self.scores.fk_order = self.db.fk_order();
            } else {
                sizel_rank::splice_appended_scores(
                    &mut self.scores,
                    &self.dg,
                    &spliced,
                    self.db.fk_order(),
                );
            }
            // Updated rows adopt their re-estimates at (unchanged) node
            // ids, overriding the insert estimate for rows appended by
            // this same run — the vector the fold leaves. Deleted rows
            // keep a stale entry no reader resolves: the keyword index no
            // longer returns them and `by_pk` no longer finds them.
            for (&t, &est) in &overrides {
                self.scores.scores[self.dg.node_id(t).index()] = est;
                let mx = &mut self.scores.per_table_max[t.table.index()];
                *mx = mx.max(est);
            }
            for gds in self.gds_by_table.iter_mut().flatten() {
                gds.set_stats(&self.scores.per_table_max);
            }
            for &t in &kw_add {
                self.kw.add_row(&self.db, t.table, t.row);
            }
            for (i, links) in self.links_by_table.iter_mut().enumerate() {
                if links.is_some() {
                    let gds = self.gds_by_table[i].as_ref().expect("links imply a GDS");
                    *links = Some(OsContext::resolve_links(&self.dg, gds));
                }
            }
        }
        match failure {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Runs the bounded rank re-iteration ([`sizel_rank::reiterate`]) and
    /// re-installs the importance order under the refreshed scores: a few
    /// power sweeps over the current database, seeded from the
    /// incrementally-maintained (stale) score vector. This is the
    /// replacement for the exact-rebuild escape hatch after update/delete
    /// churn — the sweeps recover near-exact global importance (≤ 1%
    /// relative L1 after three sweeps on the reference fixture, pinned by
    /// the rank suite) at a constant number of `O(|E|)` passes instead of
    /// the full power iteration, and without the GDS/keyword rebuilds of
    /// [`RefreshPolicy::Exact`]. The epoch advances so serving layers
    /// drop cache entries computed under the superseded scores.
    pub fn reiterate(&mut self, sweeps: u32) -> Epoch {
        let mut scores = sizel_rank::reiterate(
            &self.db,
            &self.sg,
            &self.dg,
            &self.authority,
            &self.cfg.rank,
            &self.scores,
            sweeps,
        );
        self.db.bump_epoch();
        sizel_rank::install_importance_order(&mut self.db, &self.dg, &mut scores);
        self.scores = scores;
        for gds in self.gds_by_table.iter_mut().flatten() {
            gds.set_stats(&self.scores.per_table_max);
        }
        self.db.epoch()
    }

    /// Attaches the disk tier: opens (or creates) the write-ahead log
    /// under `cfg.dir`, **replays** whatever intact records it holds
    /// through the normal batch path — recovering the committed state of
    /// a crashed predecessor byte for byte — then checkpoints the
    /// configured paged tables into posting segments, evicts their RAM
    /// postings, and routes their TOP-`l` prefix scans through the block
    /// cache. From here on every `apply`/`apply_batch` appends its batch
    /// to the WAL before settling (redo durability).
    ///
    /// The WAL is **kept** across the attach: the replay is
    /// deterministic from the same base database, so a second crash
    /// simply replays again. Truncate it explicitly
    /// ([`SizeLEngine::truncate_wal`]) once the base snapshot the engine
    /// is rebuilt from has itself absorbed the logged mutations.
    ///
    /// A record that decodes but fails validation on re-application is
    /// counted as rejected and skipped — the original run rejected the
    /// identical suffix, so the recovered state still matches. A torn or
    /// checksum-failed tail stops the replay at the last intact record
    /// and is truncated away.
    pub fn attach_disk(&mut self, cfg: DiskTierConfig) -> Result<RecoveryReport, StorageError> {
        if self.disk.is_some() {
            return Err(StorageError::Durability("a disk tier is already attached".into()));
        }
        let mut paged = Vec::with_capacity(cfg.paged_tables.len());
        for name in &cfg.paged_tables {
            paged.push(self.db.table_id(name)?);
        }
        let as_storage = |e: sizel_disk::DiskError| StorageError::Durability(e.to_string());
        std::fs::create_dir_all(&cfg.dir).map_err(|e| StorageError::Durability(e.to_string()))?;
        let (wal, replay) =
            Wal::open(&cfg.dir.join("wal.log"), cfg.fsync_every).map_err(as_storage)?;
        let mut report = RecoveryReport {
            wal_truncated_bytes: replay.truncated_bytes,
            wal_tail_damaged: replay.tail_error.is_some(),
            ..RecoveryReport::default()
        };
        for record in &replay.records {
            let (_, ms) = decode_batch(record).map_err(as_storage)?;
            report.batches_replayed += 1;
            report.mutations_replayed += ms.len();
            if self.apply_batch_inner(ms).is_err() {
                report.batches_rejected += 1;
            }
        }
        let store = Arc::new(
            PagedStore::new(&cfg.dir.join("segments"), cfg.cache_pages).map_err(as_storage)?,
        );
        if !paged.is_empty() {
            report.generation = store.checkpoint_from(&self.db, &paged).map_err(as_storage)?;
            for &tid in &paged {
                self.db.evict_table_postings(tid);
            }
            self.db.set_pager(Arc::clone(&store) as Arc<dyn sizel_storage::PostingPager>);
        }
        self.disk = Some(DiskTier { store, wal, paged, wal_appends: 0, wal_syncs: 0 });
        Ok(report)
    }

    /// Re-checkpoints the paged tables into a fresh segment generation
    /// and evicts their RAM postings again. Because mutations since the
    /// last checkpoint may have touched evicted tables (whose postings
    /// then only exist implicitly), the in-RAM sorted postings are first
    /// rebuilt from the installed per-row scores — the re-stamped order
    /// token is adopted by the engine, the fresh segment carries it, and
    /// probes route back to the pages. Returns the new generation id.
    pub fn checkpoint_disk(&mut self) -> Result<u64, StorageError> {
        let Some(disk) = self.disk.as_ref() else {
            return Err(StorageError::Durability("no disk tier attached".into()));
        };
        if disk.paged.is_empty() {
            return Err(StorageError::Durability("no tables are paged".into()));
        }
        let (store, paged) = (Arc::clone(&disk.store), disk.paged.clone());
        self.db.rebuild_postings_from_installed().ok_or_else(|| {
            StorageError::Durability("checkpoint requires installed importance scores".into())
        })?;
        self.scores.fk_order = self.db.fk_order();
        let generation = store
            .checkpoint_from(&self.db, &paged)
            .map_err(|e| StorageError::Durability(e.to_string()))?;
        for &tid in &paged {
            self.db.evict_table_postings(tid);
        }
        Ok(generation)
    }

    /// Discards the write-ahead log. Call only once every logged
    /// mutation is reflected in the base snapshot the engine would be
    /// rebuilt from after a crash — truncating earlier silently forfeits
    /// redo coverage for the discarded records.
    pub fn truncate_wal(&mut self) -> Result<(), StorageError> {
        let Some(disk) = self.disk.as_mut() else {
            return Err(StorageError::Durability("no disk tier attached".into()));
        };
        disk.wal.truncate().map_err(|e| StorageError::Durability(e.to_string()))
    }

    /// Disk-tier statistics (cache counters, segment generation, WAL
    /// size), or `None` when no tier is attached.
    pub fn disk_stats(&self) -> Option<DiskTierStats> {
        self.disk.as_ref().map(DiskTier::stats)
    }

    /// Whether a tuple is live (not tombstoned by a delete) — serving
    /// layers consult this before re-warming cached summaries whose TDS
    /// may have died.
    pub fn is_live(&self, t: TupleRef) -> bool {
        self.db.table(t.table).is_live(t.row)
    }

    /// Passes the per-table churn bound through to the owned database
    /// (see [`Database::set_churn_threshold`]): above it, a scored batch
    /// settles by one full posting re-sort instead of per-row binary
    /// insertion.
    pub fn set_churn_threshold(&mut self, threshold: usize) {
        self.db.set_churn_threshold(threshold);
    }

    /// Passes the tombstone-compaction bound through to the owned
    /// database (see [`Database::set_compaction_threshold`]): a scored
    /// batch whose settled deletes leave more than this many dead
    /// posting entries in a table triggers one compaction re-sort of
    /// that table's postings.
    pub fn set_compaction_threshold(&mut self, threshold: usize) {
        self.db.set_compaction_threshold(threshold);
    }

    /// Checks that a prospective row has the right arity and that every
    /// FK resolves in the catalog (the per-row analogue of
    /// [`Database::validate_foreign_keys`], run *before* the insert so a
    /// dangling reference cannot poison the data graph and a short row
    /// cannot be indexed by the incremental score estimate).
    fn validate_new_row_fks(&self, table: TableId, values: &[Value]) -> Result<(), StorageError> {
        let schema = &self.db.table(table).schema;
        if values.len() != schema.arity() {
            return Err(StorageError::Arity {
                table: schema.name.clone(),
                expected: schema.arity(),
                got: values.len(),
            });
        }
        for fk in &schema.fks {
            match values[fk.column] {
                Value::Null => {}
                Value::Int(k) => {
                    let target = self.db.table_id(&fk.ref_table)?;
                    if self.db.table(target).by_pk(k).is_none() {
                        return Err(StorageError::DanglingForeignKey {
                            table: schema.name.clone(),
                            column: schema.columns[fk.column].name.clone(),
                            key: k,
                        });
                    }
                }
                _ => {
                    return Err(StorageError::TypeMismatch {
                        table: schema.name.clone(),
                        column: schema.columns[fk.column].name.clone(),
                    })
                }
            }
        }
        Ok(())
    }

    /// The owned database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The global importance scores.
    pub fn scores(&self) -> &RankScores {
        &self.scores
    }

    /// The data graph (for stats reporting).
    pub fn data_graph(&self) -> &DataGraph {
        &self.dg
    }

    /// The GDS(θ) of a DS relation; panics if `table` was not configured
    /// as a DS relation.
    pub fn gds(&self, table: TableId) -> &Gds {
        self.gds_by_table[table.index()]
            .as_ref()
            .expect("table was not configured as a DS relation")
    }

    /// An [`OsContext`] over a DS relation's GDS, borrowing the link
    /// table precomputed at build — allocation-free, so `summarize` no
    /// longer pays a per-query `OsContext` rebuild (ROADMAP hot path;
    /// guarded by `tests/alloc_guard.rs`).
    pub fn context(&self, table: TableId) -> OsContext<'_> {
        let links = self.links_by_table[table.index()]
            .as_deref()
            .expect("table was not configured as a DS relation");
        OsContext::with_links(&self.db, &self.sg, &self.dg, self.gds(table), &self.scores, links)
    }

    /// Runs a keyword query with default options (l = 15, Top-Path,
    /// data-graph source, prelim-l input).
    pub fn query(&self, keywords: &str, l: usize) -> Vec<QueryResult> {
        self.query_with(keywords, QueryOptions { l, ..QueryOptions::default() })
    }

    /// Runs a keyword query with explicit options.
    pub fn query_with(&self, keywords: &str, opts: QueryOptions) -> Vec<QueryResult> {
        let mut results: Vec<QueryResult> =
            self.ds_hits(keywords).into_iter().map(|tds| self.summarize(tds, opts)).collect();
        if opts.ranking == ResultRanking::SummaryImportance {
            results.sort_by(|a, b| {
                b.result.importance.total_cmp(&a.result.importance).then(a.tds.cmp(&b.tds))
            });
        }
        results
    }

    /// Resolves a keyword query to its DS tuples, ranked by global
    /// importance descending (the paper ranks OSs by their DS's importance;
    /// see also [9]) and truncated to `max_results`. The per-DS summary
    /// computation ([`Self::summarize`]) is deliberately separate so a
    /// serving layer can memoize it per `(tds, options)` across queries.
    pub fn ds_hits(&self, keywords: &str) -> Vec<TupleRef> {
        let mut hits = self.kw.search(keywords);
        hits.sort_by(|a, b| {
            let sa = self.scores.global(self.dg.node_id(*a));
            let sb = self.scores.global(self.dg.node_id(*b));
            sb.total_cmp(&sa).then(a.cmp(b))
        });
        hits.truncate(self.cfg.max_results);
        hits
    }

    /// Computes one DS tuple's ranked summary — the per-`t_DS` unit of
    /// [`Self::query_with`]. Deterministic: a pure function of
    /// `(tds, opts.l, opts.algo, opts.prelim, opts.source)` (`opts.ranking`
    /// only reorders whole result lists), which is exactly the cache key the
    /// serving layer uses.
    ///
    /// The input OS is drawn from a thread-local [`OsArenaPool`] and
    /// released after projection, and the size-l computation draws its
    /// DP/greedy working sets from a thread-local
    /// [`crate::algo::AlgoScratch`] — so a warm serving thread
    /// re-materializes summaries without touching the allocator for the
    /// tree *or* the computation scratch (only the returned
    /// `QueryResult`'s own buffers remain; see `tests/alloc_guard.rs`).
    pub fn summarize(&self, tds: TupleRef, opts: QueryOptions) -> QueryResult {
        thread_local! {
            static POOL: std::cell::RefCell<(OsArenaPool, crate::algo::AlgoScratch)> =
                std::cell::RefCell::new((OsArenaPool::new(), crate::algo::AlgoScratch::new()));
        }
        let ctx = self.context(tds.table);
        POOL.with(|pool| {
            let (pool, scratch) = &mut *pool.borrow_mut();
            let input = if opts.prelim && opts.l > 0 {
                generate_prelim_pooled(&ctx, tds, opts.l, opts.source, pool).0
            } else {
                let cutoff = if opts.l > 0 { Some(opts.l as u32 - 1) } else { None };
                generate_os_pooled(&ctx, tds, cutoff, opts.source, pool)
            };
            let result = opts.algo.compute_pooled(&input, opts.l, scratch);
            let summary = input.project(&result.selected);
            let input_os_size = input.len();
            pool.release(input);
            QueryResult {
                tds,
                ds_label: self.ds_label(tds),
                global_score: self.scores.global(self.dg.node_id(tds)),
                input_os_size,
                result,
                summary,
            }
        })
    }

    /// Renders a result's summary in the Example-5 format.
    pub fn render(&self, qr: &QueryResult, opts: &RenderOptions) -> String {
        render_os(&self.db, self.gds(qr.tds.table), &qr.summary, opts)
    }

    fn ds_label(&self, tds: TupleRef) -> String {
        let table = self.db.table(tds.table);
        let col = table
            .schema
            .searchable_columns()
            .next()
            .or_else(|| table.schema.display_columns().next());
        match col {
            Some(c) => format!("{}: {}", table.schema.name, table.value(tds.row, c)),
            None => format!("{}: #{}", table.schema.name, table.pk_of(tds.row)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{max_pk, result_fingerprint as fingerprint};
    use sizel_datagen::dblp::{generate, DblpConfig};
    use sizel_graph::presets;
    use sizel_rank::{dblp_ga, GaPreset};
    use std::sync::OnceLock;

    fn engine() -> &'static SizeLEngine {
        static E: OnceLock<SizeLEngine> = OnceLock::new();
        E.get_or_init(|| {
            let d = generate(&DblpConfig::small());
            SizeLEngine::build(
                d.db,
                |db, sg, dg| dblp_ga(GaPreset::Ga1, db, sg, dg),
                EngineConfig::new(vec![
                    ("Author".into(), presets::dblp_author_gds_config()),
                    ("Paper".into(), presets::dblp_paper_gds_config()),
                ]),
            )
            .expect("engine builds")
        })
    }

    fn fresh_engine(d: sizel_datagen::dblp::Dblp) -> SizeLEngine {
        SizeLEngine::build(
            d.db,
            |db, sg, dg| dblp_ga(GaPreset::Ga1, db, sg, dg),
            EngineConfig::new(vec![
                ("Author".into(), presets::dblp_author_gds_config()),
                ("Paper".into(), presets::dblp_paper_gds_config()),
            ]),
        )
        .expect("engine builds")
    }

    #[test]
    fn exact_apply_is_byte_identical_to_fresh_rebuild() {
        // Mutate a live engine with the exact policy, and build a second
        // engine from scratch over an identically-mutated database: every
        // query answer must match to the float bit.
        let mut live = fresh_engine(generate(&DblpConfig::small()));
        let paper_pk = max_pk(live.db(), "Paper"); // link the new author here
        let author_pk = max_pk(live.db(), "Author") + 1;
        let junction_pk = max_pk(live.db(), "AuthorPaper") + 1;
        let author_row = vec![Value::Int(author_pk), "Zanthi Qyxmont".into()];
        let link_row = vec![Value::Int(junction_pk), Value::Int(author_pk), Value::Int(paper_pk)];
        let e0 = live.epoch();
        let e1 = live.apply(Mutation::insert("Author", author_row.clone()).exact()).unwrap();
        let e2 = live.apply(Mutation::insert("AuthorPaper", link_row.clone()).exact()).unwrap();
        assert!(e0 < e1 && e1 < e2, "every apply advances the epoch");
        assert_eq!(live.epoch(), e2);

        let mut d = generate(&DblpConfig::small());
        d.db.insert("Author", author_row).unwrap();
        d.db.insert("AuthorPaper", link_row).unwrap();
        let rebuilt = fresh_engine(d);

        for kw in ["Faloutsos", "Zanthi", "Power-law"] {
            for opts in [
                QueryOptions { l: 12, ..QueryOptions::default() },
                QueryOptions {
                    l: 8,
                    prelim: false,
                    source: OsSource::Database,
                    ..Default::default()
                },
            ] {
                assert_eq!(
                    fingerprint(&live.query_with(kw, opts)),
                    fingerprint(&rebuilt.query_with(kw, opts)),
                    "{kw} {opts:?} diverged from the fresh rebuild"
                );
            }
        }
    }

    #[test]
    fn incremental_apply_keeps_fast_paths_and_serves_new_rows() {
        let mut live = fresh_engine(generate(&DblpConfig::small()));
        let paper_pk = max_pk(live.db(), "Paper");
        let author_pk = max_pk(live.db(), "Author") + 1;
        let junction_pk = max_pk(live.db(), "AuthorPaper") + 1;
        live.apply(Mutation::insert(
            "Author",
            vec![Value::Int(author_pk), "Wexler Vantriss".into()],
        ))
        .unwrap();
        live.apply(Mutation::insert(
            "AuthorPaper",
            vec![Value::Int(junction_pk), Value::Int(author_pk), Value::Int(paper_pk)],
        ))
        .unwrap();

        // The new author is queryable, with a real summary drawn through
        // the junction row.
        let results = live.query("Wexler", 10);
        assert_eq!(results.len(), 1);
        assert!(results[0].summary.len() > 1, "the linked paper joins the summary");
        results[0].summary.validate().unwrap();

        // Both tuple sources agree after the mutation (the Database source
        // exercises the maintained sorted postings; byte-identical output
        // proves the re-stamped order is correct).
        for kw in ["Wexler", "Faloutsos"] {
            let a = live.query_with(
                kw,
                QueryOptions { l: 10, source: OsSource::DataGraph, ..Default::default() },
            );
            let b = live.query_with(
                kw,
                QueryOptions { l: 10, source: OsSource::Database, ..Default::default() },
            );
            assert_eq!(fingerprint(&a), fingerprint(&b), "{kw}: sources diverged post-mutation");
        }

        // The prefix-scan fast path is retained: Database-source prelim
        // probes after the inserts still hit sorted postings.
        live.db().access().reset();
        let _ = live.query_with(
            "Faloutsos",
            QueryOptions { l: 15, source: OsSource::Database, prelim: true, ..Default::default() },
        );
        let probes = live.db().access().probes();
        assert!(probes.fast > 0, "prefix scans survive incremental inserts: {probes:?}");
    }

    /// A mutation script with intra-batch references: the junction rows
    /// link authors/papers created earlier in the same batch, so the
    /// batched FK validation and score resolver must see the staged
    /// prefix exactly like the fold does.
    fn batch_script(e: &SizeLEngine) -> Vec<Mutation> {
        let (a, p, j) =
            (max_pk(e.db(), "Author"), max_pk(e.db(), "Paper"), max_pk(e.db(), "AuthorPaper"));
        let year_pk = {
            let t = e.db().table(e.db().table_id("Year").unwrap());
            t.pk_of(sizel_storage::RowId(0))
        };
        vec![
            Mutation::insert("Author", vec![Value::Int(a + 1), "Orla Vexley".into()]),
            Mutation::insert(
                "AuthorPaper",
                vec![Value::Int(j + 1), Value::Int(a + 1), Value::Int(p)],
            ),
            Mutation::insert(
                "Paper",
                vec![Value::Int(p + 1), "batched summaries at scale".into(), Value::Int(year_pk)],
            ),
            Mutation::insert(
                "AuthorPaper",
                vec![Value::Int(j + 2), Value::Int(a + 1), Value::Int(p + 1)],
            ),
            Mutation::insert("Author", vec![Value::Int(a + 2), "Tamsin Quell".into()]),
            Mutation::insert(
                "AuthorPaper",
                vec![Value::Int(j + 3), Value::Int(a + 2), Value::Int(p + 1)],
            ),
        ]
    }

    #[test]
    fn apply_batch_is_byte_identical_to_the_fold_across_churn_thresholds() {
        // Thresholds forcing pure binary insertion, a mix, and (1) pure
        // batched re-sorts. Summaries, epochs, and paper-cost accounting
        // must all match the fold of single applies.
        for threshold in [1usize, 3, usize::MAX] {
            let mut batched = fresh_engine(generate(&DblpConfig::tiny()));
            let mut folded = fresh_engine(generate(&DblpConfig::tiny()));
            batched.set_churn_threshold(threshold);
            folded.set_churn_threshold(threshold);
            let script = batch_script(&batched);
            // tiny has no famous authors; use a pre-existing generated
            // name token for the "untouched rows" angle.
            let existing = {
                let tid = batched.db().table_id("Author").unwrap();
                let name = batched
                    .db()
                    .table(tid)
                    .value(sizel_storage::RowId(0), 1)
                    .as_str()
                    .unwrap()
                    .to_owned();
                name.split(' ').next().unwrap().to_owned()
            };

            let be = batched.apply_batch(script.clone()).unwrap();
            let mut fe = folded.epoch();
            for m in script {
                fe = folded.apply(m).unwrap();
            }
            assert_eq!(be, fe, "threshold {threshold}: epochs diverged");

            for kw in ["Orla", "Tamsin", "batched", existing.as_str()] {
                for opts in [
                    QueryOptions { l: 8, ..QueryOptions::default() },
                    QueryOptions { l: 10, source: OsSource::Database, ..Default::default() },
                    QueryOptions { l: 6, prelim: false, ..Default::default() },
                ] {
                    let b0 = batched.db().access().snapshot();
                    let b = batched.query_with(kw, opts);
                    let b_cost = batched.db().access().snapshot().since(b0);
                    let f0 = folded.db().access().snapshot();
                    let f = folded.query_with(kw, opts);
                    let f_cost = folded.db().access().snapshot().since(f0);
                    assert_eq!(
                        fingerprint(&b),
                        fingerprint(&f),
                        "threshold {threshold}: {kw} {opts:?} diverged from the fold"
                    );
                    assert_eq!(
                        b_cost, f_cost,
                        "threshold {threshold}: {kw} {opts:?} paper-cost accounting diverged"
                    );
                }
            }
            // Both paths keep the Database-source prefix scans live.
            batched.db().access().reset();
            let _ = batched.query_with(
                &existing,
                QueryOptions { l: 10, source: OsSource::Database, ..Default::default() },
            );
            let probes = batched.db().access().probes();
            assert!(
                probes.fast > 0 && probes.heap == 0,
                "fast paths survive the batch: {probes:?}"
            );
        }
    }

    #[test]
    fn apply_batch_amortizes_to_one_graph_rebuild() {
        let mut batched = fresh_engine(generate(&DblpConfig::tiny()));
        let mut folded = fresh_engine(generate(&DblpConfig::tiny()));
        let script = batch_script(&batched);
        let n = script.len() as u64;

        let before = batched.db().access().maint();
        batched.apply_batch(script.clone()).unwrap();
        let batch_work = batched.db().access().maint().since(before);
        assert_eq!(batch_work.graph_builds, 1, "one DataGraph rebuild per batch: {batch_work:?}");

        let before = folded.db().access().maint();
        for m in script {
            folded.apply(m).unwrap();
        }
        let fold_work = folded.db().access().maint().since(before);
        assert_eq!(fold_work.graph_builds, n, "the fold rebuilds per insert: {fold_work:?}");
    }

    #[test]
    fn apply_batch_flushes_runs_around_exact_mutations() {
        // An exact mutation mid-batch flushes the pending incremental run
        // and re-derives; the end state must equal the fold's.
        let mut batched = fresh_engine(generate(&DblpConfig::tiny()));
        let mut folded = fresh_engine(generate(&DblpConfig::tiny()));
        let mut script = batch_script(&batched);
        script[2] = script[2].clone().exact();
        let be = batched.apply_batch(script.clone()).unwrap();
        let mut fe = folded.epoch();
        for m in script {
            fe = folded.apply(m).unwrap();
        }
        assert_eq!(be, fe);
        for kw in ["Orla", "batched"] {
            let opts = QueryOptions { l: 8, ..QueryOptions::default() };
            assert_eq!(
                fingerprint(&batched.query_with(kw, opts)),
                fingerprint(&folded.query_with(kw, opts)),
                "{kw} diverged across the exact flush"
            );
        }
    }

    #[test]
    fn apply_batch_error_leaves_the_folds_prefix_applied_and_synchronized() {
        let mut batched = fresh_engine(generate(&DblpConfig::tiny()));
        let mut folded = fresh_engine(generate(&DblpConfig::tiny()));
        let mut script = batch_script(&batched);
        // Poison the 4th mutation with a dangling author FK.
        script[3] = Mutation::insert(
            "AuthorPaper",
            vec![
                Value::Int(max_pk(batched.db(), "AuthorPaper") + 9),
                Value::Int(1 << 40),
                Value::Int(0),
            ],
        );
        let be = batched.apply_batch(script.clone());
        assert!(matches!(be, Err(StorageError::DanglingForeignKey { .. })));
        for m in script {
            if folded.apply(m).is_err() {
                break;
            }
        }
        assert_eq!(batched.epoch(), folded.epoch(), "the applied prefix matches the fold's");
        let opts = QueryOptions { l: 8, ..QueryOptions::default() };
        assert_eq!(
            fingerprint(&batched.query_with("Orla", opts)),
            fingerprint(&folded.query_with("Orla", opts)),
            "derived state is synchronized for the applied prefix"
        );
    }

    #[test]
    fn apply_rejects_bad_rows_without_mutating() {
        let mut live = fresh_engine(generate(&DblpConfig::tiny()));
        let before = live.epoch();
        let dangling = Mutation::insert(
            "AuthorPaper",
            vec![
                Value::Int(max_pk(live.db(), "AuthorPaper") + 1),
                Value::Int(1 << 40),
                Value::Int(0),
            ],
        );
        assert!(matches!(live.apply(dangling), Err(StorageError::DanglingForeignKey { .. })));
        assert!(live.apply(Mutation::insert("Nope", vec![])).is_err());
        assert_eq!(live.epoch(), before, "failed applies leave the epoch untouched");
    }

    #[test]
    fn engine_is_send_and_sync() {
        // The serving layer shares one engine read-only across a worker
        // pool (`Arc<SizeLEngine>`). Every field is either plain owned data
        // or atomics (the storage `AccessCounter`); no interior mutability
        // may creep in.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SizeLEngine>();
        assert_send_sync::<QueryResult>();
        assert_send_sync::<QueryOptions>();
    }

    #[test]
    fn ds_hits_plus_summarize_equals_query_with() {
        // The serving layer recomposes `query_with` from its two halves;
        // they must stay equivalent.
        let e = engine();
        let opts = QueryOptions { l: 12, ..QueryOptions::default() };
        let whole = e.query_with("Faloutsos", opts);
        let parts: Vec<QueryResult> =
            e.ds_hits("Faloutsos").into_iter().map(|t| e.summarize(t, opts)).collect();
        assert_eq!(whole.len(), parts.len());
        for (a, b) in whole.iter().zip(&parts) {
            assert_eq!(a.tds, b.tds);
            assert_eq!(a.result, b.result);
            assert_eq!(a.global_score.to_bits(), b.global_score.to_bits());
        }
    }

    #[test]
    fn q1_returns_three_size_15_summaries() {
        // The paper's Example 5: Q1 = "Faloutsos", l = 15.
        let e = engine();
        let results = e.query("Faloutsos", 15);
        assert_eq!(results.len(), 3, "one OS per Faloutsos brother");
        for r in &results {
            assert_eq!(r.result.len(), 15);
            assert_eq!(r.summary.len(), 15);
            r.summary.validate().unwrap();
            assert!(r.ds_label.contains("Faloutsos"));
        }
        // Ranked by global importance, descending.
        for w in results.windows(2) {
            assert!(w[0].global_score >= w[1].global_score);
        }
    }

    #[test]
    fn conjunctive_query_returns_single_ds() {
        let e = engine();
        let results = e.query("Christos Faloutsos", 10);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].ds_label, "Author: Christos Faloutsos");
    }

    #[test]
    fn prelim_and_complete_agree_on_quality_here() {
        let e = engine();
        let a = e.query_with(
            "Christos Faloutsos",
            QueryOptions { l: 10, prelim: true, ..QueryOptions::default() },
        );
        let b = e.query_with(
            "Christos Faloutsos",
            QueryOptions { l: 10, prelim: false, ..QueryOptions::default() },
        );
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        assert!(a[0].input_os_size <= b[0].input_os_size);
        let ratio = a[0].result.importance / b[0].result.importance.max(1e-12);
        assert!(ratio > 0.95, "prelim quality ratio {ratio}");
    }

    #[test]
    fn optimal_dominates_greedies_per_query() {
        let e = engine();
        let mut importances = Vec::new();
        for algo in [AlgoKind::Optimal, AlgoKind::BottomUp, AlgoKind::TopPath] {
            let r = e.query_with(
                "Michalis Faloutsos",
                QueryOptions { l: 12, algo, prelim: false, ..QueryOptions::default() },
            );
            importances.push(r[0].result.importance);
        }
        assert!(importances[0] >= importances[1] - 1e-9);
        assert!(importances[0] >= importances[2] - 1e-9);
    }

    #[test]
    fn paper_ds_queries_work_too() {
        let e = engine();
        // Query a paper title word; Paper is also a DS relation.
        let results = e.query("Power-law", 8);
        assert!(!results.is_empty());
        assert!(results.iter().any(|r| r.ds_label.starts_with("Paper:")));
    }

    #[test]
    fn render_produces_example5_style_output() {
        let e = engine();
        let results = e.query("Petros Faloutsos", 15);
        let text = e.render(&results[0], &RenderOptions::default());
        assert!(text.starts_with("Author: Petros Faloutsos"));
        assert!(text.contains("(Total 15 tuples)"));
    }

    #[test]
    fn unknown_keywords_return_empty() {
        let e = engine();
        assert!(e.query("xylophone quantum", 5).is_empty());
    }

    #[test]
    fn summary_ranking_orders_by_im_s() {
        let e = engine();
        let opts = QueryOptions {
            l: 10,
            ranking: ResultRanking::SummaryImportance,
            ..QueryOptions::default()
        };
        let results = e.query_with("Faloutsos", opts);
        assert_eq!(results.len(), 3);
        for w in results.windows(2) {
            assert!(w[0].result.importance >= w[1].result.importance);
        }
    }

    #[test]
    fn database_source_produces_same_summaries() {
        let e = engine();
        let a = e.query_with(
            "Petros Faloutsos",
            QueryOptions {
                l: 10,
                source: OsSource::DataGraph,
                prelim: false,
                ..QueryOptions::default()
            },
        );
        let b = e.query_with(
            "Petros Faloutsos",
            QueryOptions {
                l: 10,
                source: OsSource::Database,
                prelim: false,
                ..QueryOptions::default()
            },
        );
        assert_eq!(a[0].result.importance, b[0].result.importance);
        assert_eq!(a[0].input_os_size, b[0].input_os_size);
    }
}
