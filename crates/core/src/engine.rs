//! The end-to-end engine: database in, ranked size-l OSs out.
//!
//! `SizeLEngine::build` wires the full stack once — schema graph, data
//! graph, global importance, one GDS(θ) per DS relation (with `max/mmax`
//! stats), keyword index — and `query` then serves keyword queries exactly
//! like the paper's system: find the `t_DS` tuples matching all keywords,
//! generate each one's (prelim or complete) OS, size-l it, and return the
//! summaries ranked by the DS tuple's global importance.
//!
//! The engine is **epoch-aware**: [`SizeLEngine::apply`] accepts row
//! inserts and keeps every derived structure synchronized, either
//! incrementally ([`RefreshPolicy::Incremental`] — estimated score
//! spliced into the rank vector, sorted postings binary-maintained, the
//! FK-order token re-stamped so the prefix-scan fast paths stay live) or
//! exactly ([`RefreshPolicy::Exact`] — the escape hatch that re-derives
//! everything, byte-identical to a fresh [`SizeLEngine::build`] over the
//! mutated database). [`SizeLEngine::epoch`] exposes the database's
//! mutation epoch for cache keying (the serving layer keys its summary
//! cache by it).

use sizel_graph::{DataGraph, Gds, GdsConfig, MnLinkId, SchemaGraph};
use sizel_rank::{compute, AuthorityGraph, RankConfig, RankScores};
use sizel_storage::{Database, Epoch, StorageError, TableId, TupleRef, Value};

use crate::algo::{AlgoKind, SizeLResult};
use crate::keyword::KeywordIndex;
use crate::os::{Os, OsArenaPool};
use crate::osgen::{generate_os_pooled, OsContext, OsSource};
use crate::prelim::generate_prelim_pooled;
use crate::render::{render_os, RenderOptions};

/// Engine construction parameters.
#[derive(Debug)]
pub struct EngineConfig {
    /// DS relations (by table name) with their GDS configurations.
    pub ds_relations: Vec<(String, GdsConfig)>,
    /// Affinity threshold θ used to restrict each GDS (paper default 0.7).
    pub theta: f64,
    /// Global-importance solver configuration.
    pub rank: RankConfig,
    /// Maximum number of DSs materialized per query.
    pub max_results: usize,
}

impl EngineConfig {
    /// A config for the given DS relations with default everything else.
    pub fn new(ds_relations: Vec<(String, GdsConfig)>) -> Self {
        EngineConfig { ds_relations, theta: 0.7, rank: RankConfig::default(), max_results: 10 }
    }
}

/// How multi-DS results are ordered — the paper ranks by the DS tuple's
/// global importance; ranking by the summary's `Im(S)` is the "combined
/// size-l and top-k ranking of OSs" flagged as future work in §7.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum ResultRanking {
    /// By `Im(t_DS)` (the paper's ordering).
    #[default]
    DsGlobalImportance,
    /// By the computed summary's total importance `Im(S)`.
    SummaryImportance,
}

/// Per-query options. `Eq`/`Hash` so a serving layer can deduplicate
/// identical requests within a batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct QueryOptions {
    /// Summary size l.
    pub l: usize,
    /// Size-l algorithm.
    pub algo: AlgoKind,
    /// Tuple source for OS generation.
    pub source: OsSource,
    /// Generate a prelim-l OS instead of the complete OS (§5.3; "the use
    /// of prelim-l OSs is constantly a better choice", §6.3).
    pub prelim: bool,
    /// Result ordering.
    pub ranking: ResultRanking,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            l: 15,
            algo: AlgoKind::TopPath,
            source: OsSource::DataGraph,
            prelim: true,
            ranking: ResultRanking::default(),
        }
    }
}

/// One ranked result of a keyword query.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// The data subject tuple.
    pub tds: TupleRef,
    /// Display text of the DS tuple (first searchable/display column).
    pub ds_label: String,
    /// Global importance of `t_DS` (the ranking key).
    pub global_score: f64,
    /// Size of the OS the summary was computed from (prelim or complete).
    pub input_os_size: usize,
    /// The size-l selection and its importance.
    pub result: SizeLResult,
    /// The materialized size-l OS.
    pub summary: Os,
}

/// How [`SizeLEngine::apply`] refreshes the derived state after a
/// mutation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum RefreshPolicy {
    /// Splice an estimated global importance for the appended row
    /// (`sizel_rank::estimate_appended_score`, with its documented
    /// approximation bound), binary-maintain the sorted postings, and
    /// re-stamp the FK-order token — no power iteration, no posting
    /// re-sort, no GDS/keyword rebuild.
    #[default]
    Incremental,
    /// The exact escape hatch: re-derive everything (power iteration,
    /// full importance-order install, GDS stats, keyword index) over the
    /// mutated database. Byte-identical to a fresh [`SizeLEngine::build`].
    Exact,
}

/// One write operation against a live engine. Constructed via
/// [`Mutation::insert`]; the policy defaults to incremental and can be
/// switched with [`Mutation::exact`].
#[derive(Clone, Debug)]
pub struct Mutation {
    /// Target table name.
    pub table: String,
    /// The new row's values (validated like [`Database::insert`], plus
    /// FK existence against the catalog before anything is mutated).
    pub values: Vec<Value>,
    /// Refresh strategy for the derived state.
    pub policy: RefreshPolicy,
}

impl Mutation {
    /// An insert refreshed incrementally.
    pub fn insert(table: impl Into<String>, values: Vec<Value>) -> Self {
        Mutation { table: table.into(), values, policy: RefreshPolicy::Incremental }
    }

    /// Switches this mutation to the exact-recompute escape hatch.
    #[must_use]
    pub fn exact(mut self) -> Self {
        self.policy = RefreshPolicy::Exact;
        self
    }
}

/// The retained authority-graph builder (see [`SizeLEngine::build`]).
type GaBuilder = Box<dyn Fn(&Database, &SchemaGraph, &DataGraph) -> AuthorityGraph + Send + Sync>;

/// Everything derived from the database: rebuilt wholesale by the exact
/// refresh path, built once by [`SizeLEngine::build`].
struct Derived {
    dg: DataGraph,
    authority: AuthorityGraph,
    scores: RankScores,
    gds_by_table: Vec<Option<Gds>>,
    links_by_table: Vec<Option<Vec<Option<MnLinkId>>>>,
    kw: KeywordIndex,
}

/// The wired-up engine. Owns the database and every derived structure.
pub struct SizeLEngine {
    db: Database,
    sg: SchemaGraph,
    dg: DataGraph,
    authority: AuthorityGraph,
    scores: RankScores,
    gds_by_table: Vec<Option<Gds>>,
    /// Per-DS-table resolved M:N link tables, precomputed at build so
    /// [`SizeLEngine::context`] (and through it every `summarize`) stops
    /// allocating and re-scanning links per query.
    links_by_table: Vec<Option<Vec<Option<MnLinkId>>>>,
    kw: KeywordIndex,
    /// The GA builder, retained so the exact refresh path can re-derive
    /// the authority graph over the mutated database.
    ga: GaBuilder,
    cfg: EngineConfig,
}

impl SizeLEngine {
    /// Builds the engine: validates FKs, computes global importance with
    /// the GA produced by `ga`, builds each DS relation's GDS(θ) and the
    /// keyword index, and installs the importance-sorted FK order so
    /// Database-source TOP-l probes run as prefix scans. The `ga` builder
    /// is retained for [`SizeLEngine::apply`]'s exact refresh path.
    pub fn build(
        mut db: Database,
        ga: impl Fn(&Database, &SchemaGraph, &DataGraph) -> AuthorityGraph + Send + Sync + 'static,
        cfg: EngineConfig,
    ) -> Result<Self, StorageError> {
        db.validate_foreign_keys()?;
        let sg = SchemaGraph::from_database(&db);
        let ga: GaBuilder = Box::new(ga);
        let derived = Self::derive(&mut db, &sg, ga.as_ref(), &cfg)?;
        let Derived { dg, authority, scores, gds_by_table, links_by_table, kw } = derived;
        Ok(SizeLEngine { db, sg, dg, authority, scores, gds_by_table, links_by_table, kw, ga, cfg })
    }

    /// Computes every derived structure over `db` (which receives the
    /// importance-order install). Shared by [`SizeLEngine::build`] and
    /// the exact refresh of [`SizeLEngine::apply`] — the two are
    /// byte-identical by construction.
    fn derive(
        db: &mut Database,
        sg: &SchemaGraph,
        ga: &(dyn Fn(&Database, &SchemaGraph, &DataGraph) -> AuthorityGraph + Send + Sync),
        cfg: &EngineConfig,
    ) -> Result<Derived, StorageError> {
        let dg = DataGraph::build(db, sg);
        let authority = ga(db, sg, &dg);
        let mut scores = compute(db, sg, &dg, &authority, &cfg.rank);
        sizel_rank::install_importance_order(db, &dg, &mut scores);

        let mut gds_by_table: Vec<Option<Gds>> = (0..db.table_count()).map(|_| None).collect();
        let mut links_by_table: Vec<Option<Vec<Option<MnLinkId>>>> =
            (0..db.table_count()).map(|_| None).collect();
        let mut ds_tables = Vec::with_capacity(cfg.ds_relations.len());
        for (name, gds_cfg) in &cfg.ds_relations {
            let tid = db.table_id(name)?;
            let mut gds = Gds::build(db, sg, gds_cfg, tid).restrict(cfg.theta);
            gds.set_stats(&scores.per_table_max);
            links_by_table[tid.index()] = Some(OsContext::resolve_links(&dg, &gds));
            gds_by_table[tid.index()] = Some(gds);
            ds_tables.push(tid);
        }
        let kw = KeywordIndex::build(db, &ds_tables);
        Ok(Derived { dg, authority, scores, gds_by_table, links_by_table, kw })
    }

    /// The database's mutation epoch — the version every query of this
    /// engine is answered at. Serving layers key caches by it; any
    /// [`SizeLEngine::apply`] advances it, so entries computed against
    /// superseded data are never served again.
    pub fn epoch(&self) -> Epoch {
        self.db.epoch()
    }

    /// Applies a mutation, keeping every derived structure synchronized
    /// (see [`RefreshPolicy`] for the incremental/exact trade). Returns
    /// the new epoch. On error nothing is mutated.
    pub fn apply(&mut self, m: Mutation) -> Result<Epoch, StorageError> {
        let tid = self.db.table_id(&m.table)?;
        self.validate_new_row_fks(tid, &m.values)?;
        match m.policy {
            RefreshPolicy::Exact => {
                self.db.insert(&m.table, m.values)?;
                let derived = Self::derive(&mut self.db, &self.sg, self.ga.as_ref(), &self.cfg)?;
                let Derived { dg, authority, scores, gds_by_table, links_by_table, kw } = derived;
                self.dg = dg;
                self.authority = authority;
                self.scores = scores;
                self.gds_by_table = gds_by_table;
                self.links_by_table = links_by_table;
                self.kw = kw;
            }
            RefreshPolicy::Incremental => {
                let est = sizel_rank::estimate_appended_score(
                    &self.db,
                    &self.sg,
                    &self.dg,
                    &self.authority,
                    &self.cfg.rank,
                    &self.scores,
                    tid,
                    &m.values,
                );
                let row = self.db.insert_scored(&m.table, m.values, est)?;
                // Dense node ids shift behind the insertion point; rebuild
                // the adjacency index and splice the score at the new
                // row's slot. This is the O(|E|) linear part of an
                // incremental apply — what it avoids is the power
                // iteration (hundreds of O(|E|) sweeps) and the full
                // posting re-sort.
                self.dg = DataGraph::build(&self.db, &self.sg);
                sizel_rank::splice_appended_score(
                    &mut self.scores,
                    &self.dg,
                    TupleRef::new(tid, row),
                    est,
                    self.db.fk_order(),
                );
                for gds in self.gds_by_table.iter_mut().flatten() {
                    gds.set_stats(&self.scores.per_table_max);
                }
                self.kw.add_row(&self.db, tid, row);
                for (i, links) in self.links_by_table.iter_mut().enumerate() {
                    if links.is_some() {
                        let gds = self.gds_by_table[i].as_ref().expect("links imply a GDS");
                        *links = Some(OsContext::resolve_links(&self.dg, gds));
                    }
                }
            }
        }
        Ok(self.db.epoch())
    }

    /// Checks that a prospective row has the right arity and that every
    /// FK resolves in the catalog (the per-row analogue of
    /// [`Database::validate_foreign_keys`], run *before* the insert so a
    /// dangling reference cannot poison the data graph and a short row
    /// cannot be indexed by the incremental score estimate).
    fn validate_new_row_fks(&self, table: TableId, values: &[Value]) -> Result<(), StorageError> {
        let schema = &self.db.table(table).schema;
        if values.len() != schema.arity() {
            return Err(StorageError::Arity {
                table: schema.name.clone(),
                expected: schema.arity(),
                got: values.len(),
            });
        }
        for fk in &schema.fks {
            match values[fk.column] {
                Value::Null => {}
                Value::Int(k) => {
                    let target = self.db.table_id(&fk.ref_table)?;
                    if self.db.table(target).by_pk(k).is_none() {
                        return Err(StorageError::DanglingForeignKey {
                            table: schema.name.clone(),
                            column: schema.columns[fk.column].name.clone(),
                            key: k,
                        });
                    }
                }
                _ => {
                    return Err(StorageError::TypeMismatch {
                        table: schema.name.clone(),
                        column: schema.columns[fk.column].name.clone(),
                    })
                }
            }
        }
        Ok(())
    }

    /// The owned database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The global importance scores.
    pub fn scores(&self) -> &RankScores {
        &self.scores
    }

    /// The data graph (for stats reporting).
    pub fn data_graph(&self) -> &DataGraph {
        &self.dg
    }

    /// The GDS(θ) of a DS relation; panics if `table` was not configured
    /// as a DS relation.
    pub fn gds(&self, table: TableId) -> &Gds {
        self.gds_by_table[table.index()]
            .as_ref()
            .expect("table was not configured as a DS relation")
    }

    /// An [`OsContext`] over a DS relation's GDS, borrowing the link
    /// table precomputed at build — allocation-free, so `summarize` no
    /// longer pays a per-query `OsContext` rebuild (ROADMAP hot path;
    /// guarded by `tests/alloc_guard.rs`).
    pub fn context(&self, table: TableId) -> OsContext<'_> {
        let links = self.links_by_table[table.index()]
            .as_deref()
            .expect("table was not configured as a DS relation");
        OsContext::with_links(&self.db, &self.sg, &self.dg, self.gds(table), &self.scores, links)
    }

    /// Runs a keyword query with default options (l = 15, Top-Path,
    /// data-graph source, prelim-l input).
    pub fn query(&self, keywords: &str, l: usize) -> Vec<QueryResult> {
        self.query_with(keywords, QueryOptions { l, ..QueryOptions::default() })
    }

    /// Runs a keyword query with explicit options.
    pub fn query_with(&self, keywords: &str, opts: QueryOptions) -> Vec<QueryResult> {
        let mut results: Vec<QueryResult> =
            self.ds_hits(keywords).into_iter().map(|tds| self.summarize(tds, opts)).collect();
        if opts.ranking == ResultRanking::SummaryImportance {
            results.sort_by(|a, b| {
                b.result.importance.total_cmp(&a.result.importance).then(a.tds.cmp(&b.tds))
            });
        }
        results
    }

    /// Resolves a keyword query to its DS tuples, ranked by global
    /// importance descending (the paper ranks OSs by their DS's importance;
    /// see also [9]) and truncated to `max_results`. The per-DS summary
    /// computation ([`Self::summarize`]) is deliberately separate so a
    /// serving layer can memoize it per `(tds, options)` across queries.
    pub fn ds_hits(&self, keywords: &str) -> Vec<TupleRef> {
        let mut hits = self.kw.search(keywords);
        hits.sort_by(|a, b| {
            let sa = self.scores.global(self.dg.node_id(*a));
            let sb = self.scores.global(self.dg.node_id(*b));
            sb.total_cmp(&sa).then(a.cmp(b))
        });
        hits.truncate(self.cfg.max_results);
        hits
    }

    /// Computes one DS tuple's ranked summary — the per-`t_DS` unit of
    /// [`Self::query_with`]. Deterministic: a pure function of
    /// `(tds, opts.l, opts.algo, opts.prelim, opts.source)` (`opts.ranking`
    /// only reorders whole result lists), which is exactly the cache key the
    /// serving layer uses.
    ///
    /// The input OS is drawn from a thread-local [`OsArenaPool`] and
    /// released after projection, so a warm serving thread re-materializes
    /// summaries without touching the allocator for the tree itself.
    pub fn summarize(&self, tds: TupleRef, opts: QueryOptions) -> QueryResult {
        thread_local! {
            static POOL: std::cell::RefCell<OsArenaPool> =
                std::cell::RefCell::new(OsArenaPool::new());
        }
        let ctx = self.context(tds.table);
        let algo = opts.algo.algorithm();
        POOL.with(|pool| {
            let pool = &mut *pool.borrow_mut();
            let input = if opts.prelim && opts.l > 0 {
                generate_prelim_pooled(&ctx, tds, opts.l, opts.source, pool).0
            } else {
                let cutoff = if opts.l > 0 { Some(opts.l as u32 - 1) } else { None };
                generate_os_pooled(&ctx, tds, cutoff, opts.source, pool)
            };
            let result = algo.compute(&input, opts.l);
            let summary = input.project(&result.selected);
            let input_os_size = input.len();
            pool.release(input);
            QueryResult {
                tds,
                ds_label: self.ds_label(tds),
                global_score: self.scores.global(self.dg.node_id(tds)),
                input_os_size,
                result,
                summary,
            }
        })
    }

    /// Renders a result's summary in the Example-5 format.
    pub fn render(&self, qr: &QueryResult, opts: &RenderOptions) -> String {
        render_os(&self.db, self.gds(qr.tds.table), &qr.summary, opts)
    }

    fn ds_label(&self, tds: TupleRef) -> String {
        let table = self.db.table(tds.table);
        let col = table
            .schema
            .searchable_columns()
            .next()
            .or_else(|| table.schema.display_columns().next());
        match col {
            Some(c) => format!("{}: {}", table.schema.name, table.value(tds.row, c)),
            None => format!("{}: #{}", table.schema.name, table.pk_of(tds.row)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{max_pk, result_fingerprint as fingerprint};
    use sizel_datagen::dblp::{generate, DblpConfig};
    use sizel_graph::presets;
    use sizel_rank::{dblp_ga, GaPreset};
    use std::sync::OnceLock;

    fn engine() -> &'static SizeLEngine {
        static E: OnceLock<SizeLEngine> = OnceLock::new();
        E.get_or_init(|| {
            let d = generate(&DblpConfig::small());
            SizeLEngine::build(
                d.db,
                |db, sg, dg| dblp_ga(GaPreset::Ga1, db, sg, dg),
                EngineConfig::new(vec![
                    ("Author".into(), presets::dblp_author_gds_config()),
                    ("Paper".into(), presets::dblp_paper_gds_config()),
                ]),
            )
            .expect("engine builds")
        })
    }

    fn fresh_engine(d: sizel_datagen::dblp::Dblp) -> SizeLEngine {
        SizeLEngine::build(
            d.db,
            |db, sg, dg| dblp_ga(GaPreset::Ga1, db, sg, dg),
            EngineConfig::new(vec![
                ("Author".into(), presets::dblp_author_gds_config()),
                ("Paper".into(), presets::dblp_paper_gds_config()),
            ]),
        )
        .expect("engine builds")
    }

    #[test]
    fn exact_apply_is_byte_identical_to_fresh_rebuild() {
        // Mutate a live engine with the exact policy, and build a second
        // engine from scratch over an identically-mutated database: every
        // query answer must match to the float bit.
        let mut live = fresh_engine(generate(&DblpConfig::small()));
        let paper_pk = max_pk(live.db(), "Paper"); // link the new author here
        let author_pk = max_pk(live.db(), "Author") + 1;
        let junction_pk = max_pk(live.db(), "AuthorPaper") + 1;
        let author_row = vec![Value::Int(author_pk), "Zanthi Qyxmont".into()];
        let link_row = vec![Value::Int(junction_pk), Value::Int(author_pk), Value::Int(paper_pk)];
        let e0 = live.epoch();
        let e1 = live.apply(Mutation::insert("Author", author_row.clone()).exact()).unwrap();
        let e2 = live.apply(Mutation::insert("AuthorPaper", link_row.clone()).exact()).unwrap();
        assert!(e0 < e1 && e1 < e2, "every apply advances the epoch");
        assert_eq!(live.epoch(), e2);

        let mut d = generate(&DblpConfig::small());
        d.db.insert("Author", author_row).unwrap();
        d.db.insert("AuthorPaper", link_row).unwrap();
        let rebuilt = fresh_engine(d);

        for kw in ["Faloutsos", "Zanthi", "Power-law"] {
            for opts in [
                QueryOptions { l: 12, ..QueryOptions::default() },
                QueryOptions {
                    l: 8,
                    prelim: false,
                    source: OsSource::Database,
                    ..Default::default()
                },
            ] {
                assert_eq!(
                    fingerprint(&live.query_with(kw, opts)),
                    fingerprint(&rebuilt.query_with(kw, opts)),
                    "{kw} {opts:?} diverged from the fresh rebuild"
                );
            }
        }
    }

    #[test]
    fn incremental_apply_keeps_fast_paths_and_serves_new_rows() {
        let mut live = fresh_engine(generate(&DblpConfig::small()));
        let paper_pk = max_pk(live.db(), "Paper");
        let author_pk = max_pk(live.db(), "Author") + 1;
        let junction_pk = max_pk(live.db(), "AuthorPaper") + 1;
        live.apply(Mutation::insert(
            "Author",
            vec![Value::Int(author_pk), "Wexler Vantriss".into()],
        ))
        .unwrap();
        live.apply(Mutation::insert(
            "AuthorPaper",
            vec![Value::Int(junction_pk), Value::Int(author_pk), Value::Int(paper_pk)],
        ))
        .unwrap();

        // The new author is queryable, with a real summary drawn through
        // the junction row.
        let results = live.query("Wexler", 10);
        assert_eq!(results.len(), 1);
        assert!(results[0].summary.len() > 1, "the linked paper joins the summary");
        results[0].summary.validate().unwrap();

        // Both tuple sources agree after the mutation (the Database source
        // exercises the maintained sorted postings; byte-identical output
        // proves the re-stamped order is correct).
        for kw in ["Wexler", "Faloutsos"] {
            let a = live.query_with(
                kw,
                QueryOptions { l: 10, source: OsSource::DataGraph, ..Default::default() },
            );
            let b = live.query_with(
                kw,
                QueryOptions { l: 10, source: OsSource::Database, ..Default::default() },
            );
            assert_eq!(fingerprint(&a), fingerprint(&b), "{kw}: sources diverged post-mutation");
        }

        // The prefix-scan fast path is retained: Database-source prelim
        // probes after the inserts still hit sorted postings.
        live.db().access().reset();
        let _ = live.query_with(
            "Faloutsos",
            QueryOptions { l: 15, source: OsSource::Database, prelim: true, ..Default::default() },
        );
        let probes = live.db().access().probes();
        assert!(probes.fast > 0, "prefix scans survive incremental inserts: {probes:?}");
    }

    #[test]
    fn apply_rejects_bad_rows_without_mutating() {
        let mut live = fresh_engine(generate(&DblpConfig::tiny()));
        let before = live.epoch();
        let dangling = Mutation::insert(
            "AuthorPaper",
            vec![
                Value::Int(max_pk(live.db(), "AuthorPaper") + 1),
                Value::Int(1 << 40),
                Value::Int(0),
            ],
        );
        assert!(matches!(live.apply(dangling), Err(StorageError::DanglingForeignKey { .. })));
        assert!(live.apply(Mutation::insert("Nope", vec![])).is_err());
        assert_eq!(live.epoch(), before, "failed applies leave the epoch untouched");
    }

    #[test]
    fn engine_is_send_and_sync() {
        // The serving layer shares one engine read-only across a worker
        // pool (`Arc<SizeLEngine>`). Every field is either plain owned data
        // or atomics (the storage `AccessCounter`); no interior mutability
        // may creep in.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SizeLEngine>();
        assert_send_sync::<QueryResult>();
        assert_send_sync::<QueryOptions>();
    }

    #[test]
    fn ds_hits_plus_summarize_equals_query_with() {
        // The serving layer recomposes `query_with` from its two halves;
        // they must stay equivalent.
        let e = engine();
        let opts = QueryOptions { l: 12, ..QueryOptions::default() };
        let whole = e.query_with("Faloutsos", opts);
        let parts: Vec<QueryResult> =
            e.ds_hits("Faloutsos").into_iter().map(|t| e.summarize(t, opts)).collect();
        assert_eq!(whole.len(), parts.len());
        for (a, b) in whole.iter().zip(&parts) {
            assert_eq!(a.tds, b.tds);
            assert_eq!(a.result, b.result);
            assert_eq!(a.global_score.to_bits(), b.global_score.to_bits());
        }
    }

    #[test]
    fn q1_returns_three_size_15_summaries() {
        // The paper's Example 5: Q1 = "Faloutsos", l = 15.
        let e = engine();
        let results = e.query("Faloutsos", 15);
        assert_eq!(results.len(), 3, "one OS per Faloutsos brother");
        for r in &results {
            assert_eq!(r.result.len(), 15);
            assert_eq!(r.summary.len(), 15);
            r.summary.validate().unwrap();
            assert!(r.ds_label.contains("Faloutsos"));
        }
        // Ranked by global importance, descending.
        for w in results.windows(2) {
            assert!(w[0].global_score >= w[1].global_score);
        }
    }

    #[test]
    fn conjunctive_query_returns_single_ds() {
        let e = engine();
        let results = e.query("Christos Faloutsos", 10);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].ds_label, "Author: Christos Faloutsos");
    }

    #[test]
    fn prelim_and_complete_agree_on_quality_here() {
        let e = engine();
        let a = e.query_with(
            "Christos Faloutsos",
            QueryOptions { l: 10, prelim: true, ..QueryOptions::default() },
        );
        let b = e.query_with(
            "Christos Faloutsos",
            QueryOptions { l: 10, prelim: false, ..QueryOptions::default() },
        );
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        assert!(a[0].input_os_size <= b[0].input_os_size);
        let ratio = a[0].result.importance / b[0].result.importance.max(1e-12);
        assert!(ratio > 0.95, "prelim quality ratio {ratio}");
    }

    #[test]
    fn optimal_dominates_greedies_per_query() {
        let e = engine();
        let mut importances = Vec::new();
        for algo in [AlgoKind::Optimal, AlgoKind::BottomUp, AlgoKind::TopPath] {
            let r = e.query_with(
                "Michalis Faloutsos",
                QueryOptions { l: 12, algo, prelim: false, ..QueryOptions::default() },
            );
            importances.push(r[0].result.importance);
        }
        assert!(importances[0] >= importances[1] - 1e-9);
        assert!(importances[0] >= importances[2] - 1e-9);
    }

    #[test]
    fn paper_ds_queries_work_too() {
        let e = engine();
        // Query a paper title word; Paper is also a DS relation.
        let results = e.query("Power-law", 8);
        assert!(!results.is_empty());
        assert!(results.iter().any(|r| r.ds_label.starts_with("Paper:")));
    }

    #[test]
    fn render_produces_example5_style_output() {
        let e = engine();
        let results = e.query("Petros Faloutsos", 15);
        let text = e.render(&results[0], &RenderOptions::default());
        assert!(text.starts_with("Author: Petros Faloutsos"));
        assert!(text.contains("(Total 15 tuples)"));
    }

    #[test]
    fn unknown_keywords_return_empty() {
        let e = engine();
        assert!(e.query("xylophone quantum", 5).is_empty());
    }

    #[test]
    fn summary_ranking_orders_by_im_s() {
        let e = engine();
        let opts = QueryOptions {
            l: 10,
            ranking: ResultRanking::SummaryImportance,
            ..QueryOptions::default()
        };
        let results = e.query_with("Faloutsos", opts);
        assert_eq!(results.len(), 3);
        for w in results.windows(2) {
            assert!(w[0].result.importance >= w[1].result.importance);
        }
    }

    #[test]
    fn database_source_produces_same_summaries() {
        let e = engine();
        let a = e.query_with(
            "Petros Faloutsos",
            QueryOptions {
                l: 10,
                source: OsSource::DataGraph,
                prelim: false,
                ..QueryOptions::default()
            },
        );
        let b = e.query_with(
            "Petros Faloutsos",
            QueryOptions {
                l: 10,
                source: OsSource::Database,
                prelim: false,
                ..QueryOptions::default()
            },
        );
        assert_eq!(a[0].result.importance, b[0].result.importance);
        assert_eq!(a[0].input_os_size, b[0].input_os_size);
    }
}
