//! The end-to-end engine: database in, ranked size-l OSs out.
//!
//! `SizeLEngine::build` wires the full stack once — schema graph, data
//! graph, global importance, one GDS(θ) per DS relation (with `max/mmax`
//! stats), keyword index — and `query` then serves keyword queries exactly
//! like the paper's system: find the `t_DS` tuples matching all keywords,
//! generate each one's (prelim or complete) OS, size-l it, and return the
//! summaries ranked by the DS tuple's global importance.

use sizel_graph::{DataGraph, Gds, GdsConfig, SchemaGraph};
use sizel_rank::{compute, AuthorityGraph, RankConfig, RankScores};
use sizel_storage::{Database, StorageError, TableId, TupleRef};

use crate::algo::{AlgoKind, SizeLResult};
use crate::keyword::KeywordIndex;
use crate::os::{Os, OsArenaPool};
use crate::osgen::{generate_os_pooled, OsContext, OsSource};
use crate::prelim::generate_prelim_pooled;
use crate::render::{render_os, RenderOptions};

/// Engine construction parameters.
#[derive(Debug)]
pub struct EngineConfig {
    /// DS relations (by table name) with their GDS configurations.
    pub ds_relations: Vec<(String, GdsConfig)>,
    /// Affinity threshold θ used to restrict each GDS (paper default 0.7).
    pub theta: f64,
    /// Global-importance solver configuration.
    pub rank: RankConfig,
    /// Maximum number of DSs materialized per query.
    pub max_results: usize,
}

impl EngineConfig {
    /// A config for the given DS relations with default everything else.
    pub fn new(ds_relations: Vec<(String, GdsConfig)>) -> Self {
        EngineConfig { ds_relations, theta: 0.7, rank: RankConfig::default(), max_results: 10 }
    }
}

/// How multi-DS results are ordered — the paper ranks by the DS tuple's
/// global importance; ranking by the summary's `Im(S)` is the "combined
/// size-l and top-k ranking of OSs" flagged as future work in §7.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum ResultRanking {
    /// By `Im(t_DS)` (the paper's ordering).
    #[default]
    DsGlobalImportance,
    /// By the computed summary's total importance `Im(S)`.
    SummaryImportance,
}

/// Per-query options. `Eq`/`Hash` so a serving layer can deduplicate
/// identical requests within a batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct QueryOptions {
    /// Summary size l.
    pub l: usize,
    /// Size-l algorithm.
    pub algo: AlgoKind,
    /// Tuple source for OS generation.
    pub source: OsSource,
    /// Generate a prelim-l OS instead of the complete OS (§5.3; "the use
    /// of prelim-l OSs is constantly a better choice", §6.3).
    pub prelim: bool,
    /// Result ordering.
    pub ranking: ResultRanking,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            l: 15,
            algo: AlgoKind::TopPath,
            source: OsSource::DataGraph,
            prelim: true,
            ranking: ResultRanking::default(),
        }
    }
}

/// One ranked result of a keyword query.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// The data subject tuple.
    pub tds: TupleRef,
    /// Display text of the DS tuple (first searchable/display column).
    pub ds_label: String,
    /// Global importance of `t_DS` (the ranking key).
    pub global_score: f64,
    /// Size of the OS the summary was computed from (prelim or complete).
    pub input_os_size: usize,
    /// The size-l selection and its importance.
    pub result: SizeLResult,
    /// The materialized size-l OS.
    pub summary: Os,
}

/// The wired-up engine. Owns the database and every derived structure.
pub struct SizeLEngine {
    db: Database,
    sg: SchemaGraph,
    dg: DataGraph,
    scores: RankScores,
    gds_by_table: Vec<Option<Gds>>,
    kw: KeywordIndex,
    max_results: usize,
}

impl SizeLEngine {
    /// Builds the engine: validates FKs, computes global importance with
    /// the GA produced by `ga`, builds each DS relation's GDS(θ) and the
    /// keyword index, and installs the importance-sorted FK order so
    /// Database-source TOP-l probes run as prefix scans.
    pub fn build(
        mut db: Database,
        ga: impl FnOnce(&Database, &SchemaGraph, &DataGraph) -> AuthorityGraph,
        cfg: EngineConfig,
    ) -> Result<Self, StorageError> {
        db.validate_foreign_keys()?;
        let sg = SchemaGraph::from_database(&db);
        let dg = DataGraph::build(&db, &sg);
        let authority = ga(&db, &sg, &dg);
        let mut scores = compute(&db, &sg, &dg, &authority, &cfg.rank);
        sizel_rank::install_importance_order(&mut db, &dg, &mut scores);

        let mut gds_by_table: Vec<Option<Gds>> = (0..db.table_count()).map(|_| None).collect();
        let mut ds_tables = Vec::with_capacity(cfg.ds_relations.len());
        for (name, gds_cfg) in &cfg.ds_relations {
            let tid = db.table_id(name)?;
            let mut gds = Gds::build(&db, &sg, gds_cfg, tid).restrict(cfg.theta);
            gds.set_stats(&scores.per_table_max);
            gds_by_table[tid.index()] = Some(gds);
            ds_tables.push(tid);
        }
        let kw = KeywordIndex::build(&db, &ds_tables);
        Ok(SizeLEngine { db, sg, dg, scores, gds_by_table, kw, max_results: cfg.max_results })
    }

    /// The owned database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The global importance scores.
    pub fn scores(&self) -> &RankScores {
        &self.scores
    }

    /// The data graph (for stats reporting).
    pub fn data_graph(&self) -> &DataGraph {
        &self.dg
    }

    /// The GDS(θ) of a DS relation; panics if `table` was not configured
    /// as a DS relation.
    pub fn gds(&self, table: TableId) -> &Gds {
        self.gds_by_table[table.index()]
            .as_ref()
            .expect("table was not configured as a DS relation")
    }

    /// An [`OsContext`] over a DS relation's GDS.
    pub fn context(&self, table: TableId) -> OsContext<'_> {
        OsContext::new(&self.db, &self.sg, &self.dg, self.gds(table), &self.scores)
    }

    /// Runs a keyword query with default options (l = 15, Top-Path,
    /// data-graph source, prelim-l input).
    pub fn query(&self, keywords: &str, l: usize) -> Vec<QueryResult> {
        self.query_with(keywords, QueryOptions { l, ..QueryOptions::default() })
    }

    /// Runs a keyword query with explicit options.
    pub fn query_with(&self, keywords: &str, opts: QueryOptions) -> Vec<QueryResult> {
        let mut results: Vec<QueryResult> =
            self.ds_hits(keywords).into_iter().map(|tds| self.summarize(tds, opts)).collect();
        if opts.ranking == ResultRanking::SummaryImportance {
            results.sort_by(|a, b| {
                b.result.importance.total_cmp(&a.result.importance).then(a.tds.cmp(&b.tds))
            });
        }
        results
    }

    /// Resolves a keyword query to its DS tuples, ranked by global
    /// importance descending (the paper ranks OSs by their DS's importance;
    /// see also [9]) and truncated to `max_results`. The per-DS summary
    /// computation ([`Self::summarize`]) is deliberately separate so a
    /// serving layer can memoize it per `(tds, options)` across queries.
    pub fn ds_hits(&self, keywords: &str) -> Vec<TupleRef> {
        let mut hits = self.kw.search(keywords);
        hits.sort_by(|a, b| {
            let sa = self.scores.global(self.dg.node_id(*a));
            let sb = self.scores.global(self.dg.node_id(*b));
            sb.total_cmp(&sa).then(a.cmp(b))
        });
        hits.truncate(self.max_results);
        hits
    }

    /// Computes one DS tuple's ranked summary — the per-`t_DS` unit of
    /// [`Self::query_with`]. Deterministic: a pure function of
    /// `(tds, opts.l, opts.algo, opts.prelim, opts.source)` (`opts.ranking`
    /// only reorders whole result lists), which is exactly the cache key the
    /// serving layer uses.
    ///
    /// The input OS is drawn from a thread-local [`OsArenaPool`] and
    /// released after projection, so a warm serving thread re-materializes
    /// summaries without touching the allocator for the tree itself.
    pub fn summarize(&self, tds: TupleRef, opts: QueryOptions) -> QueryResult {
        thread_local! {
            static POOL: std::cell::RefCell<OsArenaPool> =
                std::cell::RefCell::new(OsArenaPool::new());
        }
        let ctx = self.context(tds.table);
        let algo = opts.algo.algorithm();
        POOL.with(|pool| {
            let pool = &mut *pool.borrow_mut();
            let input = if opts.prelim && opts.l > 0 {
                generate_prelim_pooled(&ctx, tds, opts.l, opts.source, pool).0
            } else {
                let cutoff = if opts.l > 0 { Some(opts.l as u32 - 1) } else { None };
                generate_os_pooled(&ctx, tds, cutoff, opts.source, pool)
            };
            let result = algo.compute(&input, opts.l);
            let summary = input.project(&result.selected);
            let input_os_size = input.len();
            pool.release(input);
            QueryResult {
                tds,
                ds_label: self.ds_label(tds),
                global_score: self.scores.global(self.dg.node_id(tds)),
                input_os_size,
                result,
                summary,
            }
        })
    }

    /// Renders a result's summary in the Example-5 format.
    pub fn render(&self, qr: &QueryResult, opts: &RenderOptions) -> String {
        render_os(&self.db, self.gds(qr.tds.table), &qr.summary, opts)
    }

    fn ds_label(&self, tds: TupleRef) -> String {
        let table = self.db.table(tds.table);
        let col = table
            .schema
            .searchable_columns()
            .next()
            .or_else(|| table.schema.display_columns().next());
        match col {
            Some(c) => format!("{}: {}", table.schema.name, table.value(tds.row, c)),
            None => format!("{}: #{}", table.schema.name, table.pk_of(tds.row)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sizel_datagen::dblp::{generate, DblpConfig};
    use sizel_graph::presets;
    use sizel_rank::{dblp_ga, GaPreset};
    use std::sync::OnceLock;

    fn engine() -> &'static SizeLEngine {
        static E: OnceLock<SizeLEngine> = OnceLock::new();
        E.get_or_init(|| {
            let d = generate(&DblpConfig::small());
            SizeLEngine::build(
                d.db,
                |db, sg, dg| dblp_ga(GaPreset::Ga1, db, sg, dg),
                EngineConfig::new(vec![
                    ("Author".into(), presets::dblp_author_gds_config()),
                    ("Paper".into(), presets::dblp_paper_gds_config()),
                ]),
            )
            .expect("engine builds")
        })
    }

    #[test]
    fn engine_is_send_and_sync() {
        // The serving layer shares one engine read-only across a worker
        // pool (`Arc<SizeLEngine>`). Every field is either plain owned data
        // or atomics (the storage `AccessCounter`); no interior mutability
        // may creep in.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SizeLEngine>();
        assert_send_sync::<QueryResult>();
        assert_send_sync::<QueryOptions>();
    }

    #[test]
    fn ds_hits_plus_summarize_equals_query_with() {
        // The serving layer recomposes `query_with` from its two halves;
        // they must stay equivalent.
        let e = engine();
        let opts = QueryOptions { l: 12, ..QueryOptions::default() };
        let whole = e.query_with("Faloutsos", opts);
        let parts: Vec<QueryResult> =
            e.ds_hits("Faloutsos").into_iter().map(|t| e.summarize(t, opts)).collect();
        assert_eq!(whole.len(), parts.len());
        for (a, b) in whole.iter().zip(&parts) {
            assert_eq!(a.tds, b.tds);
            assert_eq!(a.result, b.result);
            assert_eq!(a.global_score.to_bits(), b.global_score.to_bits());
        }
    }

    #[test]
    fn q1_returns_three_size_15_summaries() {
        // The paper's Example 5: Q1 = "Faloutsos", l = 15.
        let e = engine();
        let results = e.query("Faloutsos", 15);
        assert_eq!(results.len(), 3, "one OS per Faloutsos brother");
        for r in &results {
            assert_eq!(r.result.len(), 15);
            assert_eq!(r.summary.len(), 15);
            r.summary.validate().unwrap();
            assert!(r.ds_label.contains("Faloutsos"));
        }
        // Ranked by global importance, descending.
        for w in results.windows(2) {
            assert!(w[0].global_score >= w[1].global_score);
        }
    }

    #[test]
    fn conjunctive_query_returns_single_ds() {
        let e = engine();
        let results = e.query("Christos Faloutsos", 10);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].ds_label, "Author: Christos Faloutsos");
    }

    #[test]
    fn prelim_and_complete_agree_on_quality_here() {
        let e = engine();
        let a = e.query_with(
            "Christos Faloutsos",
            QueryOptions { l: 10, prelim: true, ..QueryOptions::default() },
        );
        let b = e.query_with(
            "Christos Faloutsos",
            QueryOptions { l: 10, prelim: false, ..QueryOptions::default() },
        );
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        assert!(a[0].input_os_size <= b[0].input_os_size);
        let ratio = a[0].result.importance / b[0].result.importance.max(1e-12);
        assert!(ratio > 0.95, "prelim quality ratio {ratio}");
    }

    #[test]
    fn optimal_dominates_greedies_per_query() {
        let e = engine();
        let mut importances = Vec::new();
        for algo in [AlgoKind::Optimal, AlgoKind::BottomUp, AlgoKind::TopPath] {
            let r = e.query_with(
                "Michalis Faloutsos",
                QueryOptions { l: 12, algo, prelim: false, ..QueryOptions::default() },
            );
            importances.push(r[0].result.importance);
        }
        assert!(importances[0] >= importances[1] - 1e-9);
        assert!(importances[0] >= importances[2] - 1e-9);
    }

    #[test]
    fn paper_ds_queries_work_too() {
        let e = engine();
        // Query a paper title word; Paper is also a DS relation.
        let results = e.query("Power-law", 8);
        assert!(!results.is_empty());
        assert!(results.iter().any(|r| r.ds_label.starts_with("Paper:")));
    }

    #[test]
    fn render_produces_example5_style_output() {
        let e = engine();
        let results = e.query("Petros Faloutsos", 15);
        let text = e.render(&results[0], &RenderOptions::default());
        assert!(text.starts_with("Author: Petros Faloutsos"));
        assert!(text.contains("(Total 15 tuples)"));
    }

    #[test]
    fn unknown_keywords_return_empty() {
        let e = engine();
        assert!(e.query("xylophone quantum", 5).is_empty());
    }

    #[test]
    fn summary_ranking_orders_by_im_s() {
        let e = engine();
        let opts = QueryOptions {
            l: 10,
            ranking: ResultRanking::SummaryImportance,
            ..QueryOptions::default()
        };
        let results = e.query_with("Faloutsos", opts);
        assert_eq!(results.len(), 3);
        for w in results.windows(2) {
            assert!(w[0].result.importance >= w[1].result.importance);
        }
    }

    #[test]
    fn database_source_produces_same_summaries() {
        let e = engine();
        let a = e.query_with(
            "Petros Faloutsos",
            QueryOptions {
                l: 10,
                source: OsSource::DataGraph,
                prelim: false,
                ..QueryOptions::default()
            },
        );
        let b = e.query_with(
            "Petros Faloutsos",
            QueryOptions {
                l: 10,
                source: OsSource::Database,
                prelim: false,
                ..QueryOptions::default()
            },
        );
        assert_eq!(a[0].result.importance, b[0].result.importance);
        assert_eq!(a[0].input_os_size, b[0].input_os_size);
    }
}
