//! Example-4/5 style rendering of (size-l) OSs.
//!
//! Nodes print as `Label: attr, attr` with dot-indentation proportional to
//! depth; consecutive *leaf* siblings of the same GDS node collapse into a
//! single `Label(s): v1, v2` line, matching how the paper prints
//! `Co-Author(s): Michalis Faloutsos, Petros Faloutsos`.

use std::fmt::Write as _;

use sizel_graph::Gds;
use sizel_storage::Database;

use crate::os::{Os, OsNodeId};

/// Rendering options.
#[derive(Clone, Copy, Debug)]
pub struct RenderOptions {
    /// Append ` [im=..]` local-importance annotations.
    pub show_importance: bool,
    /// Collapse consecutive leaf siblings with the same label.
    pub group_siblings: bool,
    /// Cap on printed lines (`None` = all); a `(... N more tuples)` marker
    /// reports the cut.
    pub max_lines: Option<usize>,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions { show_importance: false, group_siblings: true, max_lines: None }
    }
}

/// Renders `os` to an indented text block.
pub fn render_os(db: &Database, gds: &Gds, os: &Os, opts: &RenderOptions) -> String {
    let mut out = String::new();
    let mut lines = 0usize;
    let mut truncated = 0usize;
    render_children(db, gds, os, os.root(), opts, &mut out, &mut lines, &mut truncated, true);
    if truncated > 0 {
        let _ = writeln!(out, "(... {truncated} more tuples)");
    }
    let _ = writeln!(out, "(Total {} tuples)", os.len());
    out
}

/// The one-line text of a node: `Label: display values`.
fn node_text(db: &Database, gds: &Gds, os: &Os, id: OsNodeId, opts: &RenderOptions) -> String {
    let n = os.node(id);
    let label = &gds.node(n.gds_node).label;
    let table = db.table(n.tuple.table);
    let row = table.row(n.tuple.row);
    let mut vals = String::new();
    for (i, c) in table.schema.display_columns().enumerate() {
        if i > 0 {
            vals.push_str(", ");
        }
        let _ = write!(vals, "{}", row[c]);
    }
    let mut line = format!("{label}: {vals}");
    if opts.show_importance {
        let _ = write!(line, " [im={:.3}]", n.weight);
    }
    line
}

/// The display values only (used when grouping siblings).
fn value_text(db: &Database, os: &Os, id: OsNodeId) -> String {
    let n = os.node(id);
    let table = db.table(n.tuple.table);
    let row = table.row(n.tuple.row);
    let mut vals = String::new();
    for (i, c) in table.schema.display_columns().enumerate() {
        if i > 0 {
            vals.push_str(", ");
        }
        let _ = write!(vals, "{}", row[c]);
    }
    vals
}

#[allow(clippy::too_many_arguments)]
fn render_children(
    db: &Database,
    gds: &Gds,
    os: &Os,
    id: OsNodeId,
    opts: &RenderOptions,
    out: &mut String,
    lines: &mut usize,
    truncated: &mut usize,
    is_root: bool,
) {
    let depth = os.node(id).depth as usize;
    let indent = ".".repeat(depth * 2);
    if is_root {
        emit(
            out,
            lines,
            truncated,
            opts,
            &format!("{}{}", indent, node_text(db, gds, os, id, opts)),
        );
    }
    let children = os.children(id);
    let mut i = 0;
    while i < children.len() {
        let c = children[i];
        let c_node = os.node(c);
        // Group a run of >= 2 consecutive leaf siblings of the same GDS node.
        if opts.group_siblings && os.child_count(c) == 0 {
            let mut j = i;
            while j < children.len()
                && os.node(children[j]).gds_node == c_node.gds_node
                && os.child_count(children[j]) == 0
            {
                j += 1;
            }
            if j - i >= 2 {
                let label = &gds.node(c_node.gds_node).label;
                let vals: Vec<String> =
                    children[i..j].iter().map(|&x| value_text(db, os, x)).collect();
                let child_indent = ".".repeat((depth + 1) * 2);
                emit(
                    out,
                    lines,
                    truncated,
                    opts,
                    &format!("{child_indent}{label}(s): {}", vals.join(", ")),
                );
                i = j;
                continue;
            }
        }
        let child_indent = ".".repeat((depth + 1) * 2);
        emit(
            out,
            lines,
            truncated,
            opts,
            &format!("{child_indent}{}", node_text(db, gds, os, c, opts)),
        );
        render_children(db, gds, os, c, opts, out, lines, truncated, false);
        i += 1;
    }
}

fn emit(
    out: &mut String,
    lines: &mut usize,
    truncated: &mut usize,
    opts: &RenderOptions,
    line: &str,
) {
    if let Some(cap) = opts.max_lines {
        if *lines >= cap {
            *truncated += 1;
            return;
        }
    }
    *lines += 1;
    out.push_str(line);
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{SizeLAlgorithm, TopPath};
    use crate::osgen::{generate_os, OsSource};
    use crate::test_fixtures::dblp_fixture;

    #[test]
    fn renders_root_and_children_with_indentation() {
        let f = dblp_fixture();
        let ctx = f.ctx();
        let os = generate_os(&ctx, f.author_tds(0), None, OsSource::DataGraph);
        let s = render_os(&f.dblp.db, &f.gds, &os, &RenderOptions::default());
        assert!(s.starts_with("Author: "), "root line first: {s}");
        assert!(s.contains("..Paper: "), "papers indented under the author");
        assert!(s.contains(&format!("(Total {} tuples)", os.len())));
    }

    #[test]
    fn grouping_collapses_coauthor_runs() {
        let f = dblp_fixture();
        let ctx = f.ctx();
        // Find an author whose OS has a paper with >= 2 co-authors.
        for i in 0..10 {
            let os = generate_os(&ctx, f.author_tds(i), None, OsSource::DataGraph);
            let s = render_os(&f.dblp.db, &f.gds, &os, &RenderOptions::default());
            if s.contains("CoAuthor(s): ") {
                assert!(s.contains(", "), "grouped line lists multiple names");
                return;
            }
        }
        panic!("no multi-coauthor paper found in the first 10 authors");
    }

    #[test]
    fn max_lines_truncates_with_marker() {
        let f = dblp_fixture();
        let ctx = f.ctx();
        let os = generate_os(&ctx, f.author_tds(0), None, OsSource::DataGraph);
        let opts = RenderOptions { max_lines: Some(5), ..RenderOptions::default() };
        let s = render_os(&f.dblp.db, &f.gds, &os, &opts);
        assert!(s.lines().count() <= 7, "5 content lines + marker + total");
        assert!(s.contains("more tuples"));
    }

    #[test]
    fn renders_projected_size_l_os() {
        let f = dblp_fixture();
        let ctx = f.ctx();
        let os = generate_os(&ctx, f.author_tds(0), Some(14), OsSource::DataGraph);
        let r = TopPath.compute(&os, 15);
        let sub = os.project(&r.selected);
        let s = render_os(&f.dblp.db, &f.gds, &sub, &RenderOptions::default());
        assert!(s.contains("(Total 15 tuples)"));
    }

    #[test]
    fn importance_annotations() {
        let f = dblp_fixture();
        let ctx = f.ctx();
        let os = generate_os(&ctx, f.author_tds(3), Some(2), OsSource::DataGraph);
        let opts = RenderOptions { show_importance: true, ..RenderOptions::default() };
        let s = render_os(&f.dblp.db, &f.gds, &os, &opts);
        assert!(s.contains("[im="));
    }
}
