//! Regenerators for every table and figure of the paper's Section 6.
//!
//! Each function returns printable markdown; the `repro` binary routes
//! subcommands here. Absolute numbers differ from the paper (synthetic
//! data, Rust, in-memory engine — see DESIGN.md §3); the *shapes* are what
//! EXPERIMENTS.md checks.

use std::time::Instant;

use sizel_core::algo::{
    AlgoKind, BottomUp, DpKnapsack, DpNaive, NaiveOutcome, SizeLAlgorithm, SizeLResult, TopPath,
    TopPathOpt,
};
use sizel_core::eval::{snippet_selection, EvaluatorPanel};
use sizel_core::os::Os;
use sizel_core::osgen::{generate_os, OsContext, OsSource};
use sizel_core::prelim::generate_prelim;
use sizel_core::render::{render_os, RenderOptions};
use sizel_storage::TupleRef;

use crate::{markdown_table, Bench, DbKind, GdsKind, SETTINGS};

/// The l axis of Figures 8 (effectiveness).
const FIG8_LS: [usize; 6] = [5, 10, 15, 20, 25, 30];
/// The l axis of Figures 9 and 10.
const FIG9_LS: [usize; 10] = [5, 10, 15, 20, 25, 30, 35, 40, 45, 50];

fn n_samples(bench: &Bench) -> usize {
    if bench.quick {
        4
    } else {
        10
    }
}

fn time_ms(mut f: impl FnMut()) -> f64 {
    // Three repetitions, minimum — robust to scheduler noise at µs scale.
    let mut best = f64::MAX;
    for _ in 0..3 {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Generates (complete-with-cutoff, prelim) OS pair for one DS — the
/// inputs a size-l query would actually build (§3.3 footnote).
fn os_pair(ctx: &OsContext<'_>, tds: TupleRef, l: usize) -> (Os, Os) {
    let complete = generate_os(ctx, tds, Some(l as u32 - 1), OsSource::DataGraph);
    let (prelim, _) = generate_prelim(ctx, tds, l, OsSource::DataGraph);
    (complete, prelim)
}

/// Generates (full complete OS, prelim-l) — Figure 10 times the size-l
/// computation against the *fixed* complete OS (its |OS| is the figure's
/// label), which is what makes Bottom-Up faster as l grows (fewer
/// de-heapings, §6.3).
fn full_pair(ctx: &OsContext<'_>, tds: TupleRef, l: usize) -> (Os, Os) {
    let complete = generate_os(ctx, tds, None, OsSource::DataGraph);
    let (prelim, _) = generate_prelim(ctx, tds, l, OsSource::DataGraph);
    (complete, prelim)
}

// ---------------------------------------------------------------------
// Figure 8: effectiveness
// ---------------------------------------------------------------------

/// Figure 8(a-d): effectiveness (recall = precision) of the optimal size-l
/// OS per ranking setting, against the synthetic evaluator panel anchored
/// on GA1-d1 (see DESIGN.md §3 for the substitution).
pub fn fig8(bench: &Bench) -> String {
    let panel = EvaluatorPanel {
        n_evaluators: if bench.quick { 4 } else { 8 },
        ..EvaluatorPanel::default()
    };
    let mut out =
        String::from("## Figure 8 — Effectiveness (recall = precision), optimal size-l OS\n\n");
    for kind in GdsKind::ALL {
        let samples = bench.samples(kind, n_samples(bench));
        let mut rows = Vec::new();
        for (si, setting) in SETTINGS.iter().enumerate() {
            let mut row = vec![setting.name.to_string()];
            for &l in &FIG8_LS {
                let mut total = 0.0;
                let mut count = 0usize;
                for &tds in &samples {
                    let ref_ctx = bench.ctx(kind, 0);
                    let ref_os =
                        generate_os(&ref_ctx, tds, Some(l as u32 - 1), OsSource::DataGraph);
                    if ref_os.len() < l {
                        continue;
                    }
                    let ctx = bench.ctx(kind, si);
                    let os = generate_os(&ctx, tds, Some(l as u32 - 1), OsSource::DataGraph);
                    let computed = DpKnapsack.compute(&os, l);
                    total += panel.panel_effectiveness(&ref_os, &computed, l);
                    count += 1;
                }
                row.push(if count == 0 {
                    "-".into()
                } else {
                    format!("{:.1}%", 100.0 * total / count as f64)
                });
            }
            rows.push(row);
        }
        out.push_str(&format!("### {} (cf. Figure 8)\n\n", kind.label()));
        let header: Vec<String> = std::iter::once("setting".to_string())
            .chain(FIG8_LS.iter().map(|l| format!("l={l}")))
            .collect();
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        out.push_str(&markdown_table(&header_refs, &rows));
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------
// Figure 9: approximation quality
// ---------------------------------------------------------------------

fn quality_row(
    bench: &Bench,
    kind: GdsKind,
    samples: &[TupleRef],
    setting: usize,
    ls: &[usize],
) -> Vec<Vec<String>> {
    let ctx = bench.ctx(kind, setting);
    let methods: [(&str, &dyn SizeLAlgorithm, bool); 4] = [
        ("Bottom-Up (Complete OS)", &BottomUp, false),
        ("Bottom-Up (Prelim-l OS)", &BottomUp, true),
        ("Update Top-Path-l (Complete OS)", &TopPath, false),
        ("Update Top-Path-l (Prelim-l OS)", &TopPath, true),
    ];
    let mut rows: Vec<Vec<String>> =
        methods.iter().map(|(name, _, _)| vec![name.to_string()]).collect();
    for &l in ls {
        let mut sums = [0.0f64; 4];
        let mut count = 0usize;
        for &tds in samples {
            let (complete, prelim) = os_pair(&ctx, tds, l);
            if complete.len() <= 1 {
                continue;
            }
            count += 1;
            let opt = DpKnapsack.compute(&complete, l).importance.max(1e-12);
            for (m, (_, algo, use_prelim)) in methods.iter().enumerate() {
                let input = if *use_prelim { &prelim } else { &complete };
                let r = algo.compute(input, l);
                sums[m] += (r.importance / opt).min(1.0);
            }
        }
        for (m, row) in rows.iter_mut().enumerate() {
            row.push(if count == 0 {
                "-".into()
            } else {
                format!("{:.1}%", 100.0 * sums[m] / count as f64)
            });
        }
    }
    rows
}

/// Figure 9(a-f): approximation quality of the greedy methods vs. the
/// optimum, on complete and prelim-l inputs.
pub fn fig9(bench: &Bench) -> String {
    let mut out = String::from("## Figure 9 — Approximation quality (Im(S) / optimal)\n\n");
    let header: Vec<String> = std::iter::once("method".to_string())
        .chain(FIG9_LS.iter().map(|l| format!("l={l}")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();

    // Panels (a)-(d).
    for kind in GdsKind::ALL {
        let samples = bench.samples(kind, n_samples(bench));
        let ctx = bench.ctx(kind, 0);
        let avg_size: f64 = samples
            .iter()
            .map(|&t| generate_os(&ctx, t, None, OsSource::DataGraph).len() as f64)
            .sum::<f64>()
            / samples.len() as f64;
        out.push_str(&format!("### {} (Aver|OS|={avg_size:.0})\n\n", kind.label()));
        let rows = quality_row(bench, kind, &samples, 0, &FIG9_LS);
        out.push_str(&markdown_table(&header_refs, &rows));
        out.push('\n');
    }

    // Panel (e): one small Author OS (the paper's |OS| = 67). The ladder
    // is ascending, so the first entry is the smallest famous author.
    let ladder = bench.ladder();
    if let Some((name, tds)) = ladder.first() {
        let ctx = bench.ctx(GdsKind::Author, 0);
        let size = generate_os(&ctx, *tds, None, OsSource::DataGraph).len();
        out.push_str(&format!("### (e) Small DBLP Author OS — {name} (|OS|={size})\n\n"));
        let rows = quality_row(bench, GdsKind::Author, &[*tds], 0, &FIG9_LS);
        out.push_str(&markdown_table(&header_refs, &rows));
        out.push('\n');
    }

    // Panel (f): DBLP Author across ranking settings, averaged over l.
    out.push_str("### (f) DBLP Author across settings (average over l=5..50)\n\n");
    let samples = bench.samples(GdsKind::Author, n_samples(bench));
    let mut rows = Vec::new();
    let method_names = [
        "Bottom-Up (Complete OS)",
        "Bottom-Up (Prelim-l OS)",
        "Update Top-Path-l (Complete OS)",
        "Update Top-Path-l (Prelim-l OS)",
    ];
    for (m, name) in method_names.iter().enumerate() {
        let mut row = vec![name.to_string()];
        for (si, _) in SETTINGS.iter().enumerate() {
            let per_l = quality_row(bench, GdsKind::Author, &samples, si, &FIG9_LS);
            // Average the per-l percentages of method m.
            let vals: Vec<f64> = per_l[m][1..]
                .iter()
                .filter_map(|s| s.trim_end_matches('%').parse::<f64>().ok())
                .collect();
            let avg = vals.iter().sum::<f64>() / vals.len().max(1) as f64;
            row.push(format!("{avg:.1}%"));
        }
        rows.push(row);
    }
    let hdr: Vec<String> = std::iter::once("method".to_string())
        .chain(SETTINGS.iter().map(|s| s.name.to_string()))
        .collect();
    let hdr_refs: Vec<&str> = hdr.iter().map(|s| s.as_str()).collect();
    out.push_str(&markdown_table(&hdr_refs, &rows));
    out
}

// ---------------------------------------------------------------------
// Figure 10: efficiency
// ---------------------------------------------------------------------

/// Figure 10(a-d): size-l computation time per method and input, averaged
/// over the sampled OSs, excluding OS generation time (as the paper does).
/// The paper's DP is run with a step budget; exhausted cells print `>cap`.
pub fn fig10(bench: &Bench) -> String {
    let ls: Vec<usize> = if bench.quick { vec![10, 30] } else { FIG9_LS.to_vec() };
    let naive_budget: u64 = if bench.quick { 2_000_000 } else { 50_000_000 };
    let mut out = String::from(
        "## Figure 10 — Efficiency: size-l computation time (ms), OS generation excluded\n\n",
    );
    for kind in GdsKind::ALL {
        let samples = bench.samples(kind, n_samples(bench));
        let ctx = bench.ctx(kind, 0);
        out.push_str(&format!("### {}\n\n", kind.label()));
        let mut rows: Vec<Vec<String>> = Vec::new();
        let method_names = [
            "Bottom-Up (Complete OS)",
            "Bottom-Up (Prelim-l OS)",
            "Update Top-path-l (Complete OS)",
            "Update Top-path-l (Prelim-l OS)",
            "Optimal/paper-DP (Complete OS)",
            "Optimal/paper-DP (Prelim-l OS)",
        ];
        let mut cells: Vec<Vec<String>> = vec![Vec::new(); method_names.len()];
        for &l in &ls {
            let pairs: Vec<(Os, Os)> = samples.iter().map(|&t| full_pair(&ctx, t, l)).collect();
            // Greedy methods: average min-of-3 timings.
            for (m, use_prelim, algo) in [
                (0usize, false, &BottomUp as &dyn SizeLAlgorithm),
                (1, true, &BottomUp),
                (2, false, &TopPath),
                (3, true, &TopPath),
            ] {
                let mut total = 0.0;
                for (complete, prelim) in &pairs {
                    let input = if use_prelim { prelim } else { complete };
                    total += time_ms(|| {
                        std::hint::black_box(algo.compute(input, l));
                    });
                }
                cells[m].push(format!("{:.3}", total / pairs.len() as f64));
            }
            // Paper DP with budget.
            for (m, use_prelim) in [(4usize, false), (5, true)] {
                let dp = DpNaive { budget: naive_budget };
                let mut total = 0.0;
                let mut exceeded = false;
                for (complete, prelim) in &pairs {
                    let input = if use_prelim { prelim } else { complete };
                    let t0 = Instant::now();
                    match dp.try_compute(input, l) {
                        NaiveOutcome::Done(_, _) => total += t0.elapsed().as_secs_f64() * 1e3,
                        NaiveOutcome::BudgetExceeded => {
                            exceeded = true;
                            break;
                        }
                    }
                }
                cells[m].push(if exceeded {
                    ">cap".into()
                } else {
                    format!("{:.3}", total / pairs.len() as f64)
                });
            }
        }
        for (m, name) in method_names.iter().enumerate() {
            let mut row = vec![name.to_string()];
            row.extend(cells[m].clone());
            rows.push(row);
        }
        let header: Vec<String> = std::iter::once("method".to_string())
            .chain(ls.iter().map(|l| format!("l={l}")))
            .collect();
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        out.push_str(&markdown_table(&header_refs, &rows));
        out.push('\n');
    }
    out
}

/// Figure 10(e): scalability — size-10 computation time against |OS| over
/// the famous-author ladder.
pub fn fig10e(bench: &Bench) -> String {
    let l = 10usize;
    let naive_budget: u64 = if bench.quick { 2_000_000 } else { 50_000_000 };
    let mut out =
        String::from("## Figure 10(e) — Scalability: size-10 OS computation time vs |OS| (ms)\n\n");
    let ctx = bench.ctx(GdsKind::Author, 0);
    let mut rows = Vec::new();
    // The ladder is already ascending in |OS|.
    for (name, tds) in bench.ladder() {
        let full = generate_os(&ctx, tds, None, OsSource::DataGraph);
        let (complete, prelim) = full_pair(&ctx, tds, l);
        let t_bu_c = time_ms(|| {
            std::hint::black_box(BottomUp.compute(&complete, l));
        });
        let t_bu_p = time_ms(|| {
            std::hint::black_box(BottomUp.compute(&prelim, l));
        });
        let t_tp_c = time_ms(|| {
            std::hint::black_box(TopPath.compute(&complete, l));
        });
        let t_tp_p = time_ms(|| {
            std::hint::black_box(TopPath.compute(&prelim, l));
        });
        let dp = DpNaive { budget: naive_budget };
        let t0 = Instant::now();
        let t_dp = match dp.try_compute(&complete, l) {
            NaiveOutcome::Done(_, _) => format!("{:.3}", t0.elapsed().as_secs_f64() * 1e3),
            NaiveOutcome::BudgetExceeded => ">cap".into(),
        };
        rows.push(vec![
            name,
            full.len().to_string(),
            format!("{t_bu_c:.3}"),
            format!("{t_bu_p:.3}"),
            format!("{t_tp_c:.3}"),
            format!("{t_tp_p:.3}"),
            t_dp,
        ]);
    }
    out.push_str(&markdown_table(
        &[
            "author",
            "|OS|",
            "BU (complete)",
            "BU (prelim)",
            "TP (complete)",
            "TP (prelim)",
            "paper-DP (complete)",
        ],
        &rows,
    ));
    out
}

/// Figure 10(f): cost breakdown — OS generation (data-graph vs database)
/// plus size-l computation, and prelim-l sizes/savings, on the Supplier
/// GDS.
pub fn fig10f(bench: &Bench) -> String {
    let mut out = String::from(
        "## Figure 10(f) — Cost breakdown on TPC-H Supplier (ms; averages over samples)\n\n",
    );
    let samples = bench.samples(GdsKind::Supplier, n_samples(bench));
    let ctx = bench.ctx(GdsKind::Supplier, 0);
    let db = bench.db(DbKind::Tpch);

    let mut rows = Vec::new();
    for &l in &[10usize, 50] {
        let mut gen_graph = 0.0;
        let mut gen_db = 0.0;
        let mut gen_prelim_graph = 0.0;
        let mut gen_prelim_db = 0.0;
        let mut complete_size = 0usize;
        let mut prelim_size = 0usize;
        let mut joins_complete = 0u64;
        let mut joins_prelim = 0u64;
        let mut t_bu = 0.0;
        let mut t_tp = 0.0;
        for &tds in &samples {
            gen_graph += time_ms(|| {
                std::hint::black_box(generate_os(
                    &ctx,
                    tds,
                    Some(l as u32 - 1),
                    OsSource::DataGraph,
                ));
            });
            db.access().reset();
            gen_db += time_ms(|| {
                std::hint::black_box(generate_os(
                    &ctx,
                    tds,
                    Some(l as u32 - 1),
                    OsSource::Database,
                ));
            });
            joins_complete += db.access().snapshot().joins / 3; // time_ms runs 3x
            gen_prelim_graph += time_ms(|| {
                std::hint::black_box(generate_prelim(&ctx, tds, l, OsSource::DataGraph));
            });
            db.access().reset();
            gen_prelim_db += time_ms(|| {
                std::hint::black_box(generate_prelim(&ctx, tds, l, OsSource::Database));
            });
            joins_prelim += db.access().snapshot().joins / 3;
            let (complete, prelim) = os_pair(&ctx, tds, l);
            complete_size += complete.len();
            prelim_size += prelim.len();
            t_bu += time_ms(|| {
                std::hint::black_box(BottomUp.compute(&prelim, l));
            });
            t_tp += time_ms(|| {
                std::hint::black_box(TopPath.compute(&prelim, l));
            });
        }
        let n = samples.len() as f64;
        rows.push(vec![
            format!("l={l}"),
            format!("{:.0}", complete_size as f64 / n),
            format!("{:.0}", prelim_size as f64 / n),
            format!("{:.3}", gen_graph / n),
            format!("{:.3}", gen_db / n),
            format!("{:.3}", gen_prelim_graph / n),
            format!("{:.3}", gen_prelim_db / n),
            format!("{:.0}", joins_complete as f64 / n),
            format!("{:.0}", joins_prelim as f64 / n),
            format!("{:.3}", t_bu / n),
            format!("{:.3}", t_tp / n),
        ]);
    }
    out.push_str(&markdown_table(
        &[
            "l",
            "|OS|",
            "|prelim|",
            "gen complete (graph)",
            "gen complete (DB)",
            "gen prelim (graph)",
            "gen prelim (DB)",
            "joins complete",
            "joins prelim",
            "Bottom-Up on prelim",
            "Top-Path on prelim",
        ],
        &rows,
    ));
    out.push_str(&format!(
        "\nData-graph build: DBLP {:.0} ms, TPC-H {:.0} ms (cf. the paper's 17 s / 128 s at full scale).\n",
        bench.dblp_dg_ms, bench.tpch_dg_ms
    ));
    out
}

// ---------------------------------------------------------------------
// Auxiliary reproductions
// ---------------------------------------------------------------------

/// Figures 2 and 12 (and the two GDSs the paper describes in prose):
/// annotated GDS(0.7) trees.
pub fn show_gds(bench: &Bench) -> String {
    let mut out =
        String::from("## Figures 2 / 12 — annotated GDS(0.7) per DS relation (GA1-d1)\n\n");
    for kind in GdsKind::ALL {
        out.push_str(&format!(
            "### {}\n\n```\n{}```\n\n",
            kind.label(),
            bench.gds(kind, 0).pretty()
        ));
    }
    out
}

/// Figure 13: the authority transfer rates of each GA preset.
pub fn show_ga(bench: &Bench) -> String {
    let mut out = String::from("## Figure 13 — authority transfer schema graphs\n\n");
    for (db_kind, name) in [(DbKind::Dblp, "DBLP"), (DbKind::Tpch, "TPC-H")] {
        for preset in [sizel_rank::GaPreset::Ga1, sizel_rank::GaPreset::Ga2] {
            let (db, sg, dg) = match db_kind {
                DbKind::Dblp => (&bench.dblp.db, &bench.dblp_sg, &bench.dblp_dg),
                DbKind::Tpch => (&bench.tpch.db, &bench.tpch_sg, &bench.tpch_dg),
            };
            let ga = match db_kind {
                DbKind::Dblp => sizel_rank::dblp_ga(preset, db, sg, dg),
                DbKind::Tpch => sizel_rank::tpch_ga(preset, db, sg, dg),
            };
            out.push_str(&format!("### {name} {}\n\n", ga.name));
            for e in sg.edges() {
                let rates = ga.edge_rates[e.id.index()];
                if rates.forward == 0.0 && rates.backward == 0.0 {
                    continue;
                }
                let from = &db.table(e.from).schema.name;
                let col = &db.table(e.from).schema.columns[e.fk_col].name;
                let to = &db.table(e.to).schema.name;
                out.push_str(&format!(
                    "- `{from}.{col} -> {to}`: forward {}, backward {}\n",
                    rates.forward, rates.backward
                ));
            }
            for (i, link) in dg.links().iter().enumerate() {
                if ga.link_rates[i] == 0.0 {
                    continue;
                }
                let from = &db.table(link.from_table).schema.name;
                let to = &db.table(link.to_table).schema.name;
                let via = &db.table(link.junction).schema.name;
                out.push_str(&format!("- M:N `{from} -> {to}` via {via}: {}\n", ga.link_rates[i]));
            }
            if ga.is_value_rank() {
                out.push_str("- value functions: ");
                let names: Vec<String> = ga
                    .value_fns
                    .iter()
                    .map(|vf| {
                        let t = db.table(vf.table);
                        format!("f({}.{})", t.schema.name, t.schema.columns[vf.column].name)
                    })
                    .collect();
                out.push_str(&names.join(", "));
                out.push('\n');
            }
            out.push('\n');
        }
    }
    out
}

/// Examples 4 and 5: the complete OS (head) and the size-15 OSs of the
/// pinned example authors.
pub fn example45(bench: &Bench) -> String {
    let mut out = String::from("## Examples 4 / 5 — complete OS and size-15 OSs\n\n");
    let ctx = bench.ctx(GdsKind::Author, 0);
    let ladder = bench.ladder();
    // The ladder is ascending; the example trio are the three largest.
    let trio: Vec<(String, TupleRef)> = ladder.iter().rev().take(3).cloned().collect();
    if let Some((name, tds)) = trio.first() {
        let complete = generate_os(&ctx, *tds, None, OsSource::DataGraph);
        out.push_str(&format!(
            "### Example 4 — complete OS for {name} ({} tuples)\n\n```\n",
            complete.len()
        ));
        let opts = RenderOptions { max_lines: Some(14), ..RenderOptions::default() };
        out.push_str(&render_os(
            bench.db(DbKind::Dblp),
            bench.gds(GdsKind::Author, 0),
            &complete,
            &opts,
        ));
        out.push_str("```\n\n");
    }
    out.push_str("### Example 5 — size-15 OSs\n\n");
    for (name, tds) in &trio {
        let (prelim, _) = generate_prelim(&ctx, *tds, 15, OsSource::DataGraph);
        let r = TopPath.compute(&prelim, 15);
        let summary = prelim.project(&r.selected);
        out.push_str(&format!("**{name}** (Im(S) = {:.3}):\n\n```\n", r.importance));
        out.push_str(&render_os(
            bench.db(DbKind::Dblp),
            bench.gds(GdsKind::Author, 0),
            &summary,
            &RenderOptions::default(),
        ));
        out.push_str("```\n\n");
    }
    out
}

/// The §6.1 comparative evaluation: static snippets vs size-5 OSs.
pub fn snippet_baseline(bench: &Bench) -> String {
    let mut out = String::from(
        "## §6.1 comparative — Google-Desktop-style static snippets vs size-5 OSs\n\n",
    );
    let ctx = bench.ctx(GdsKind::Author, 0);
    let samples = bench.samples(GdsKind::Author, n_samples(bench));
    let panel = EvaluatorPanel::default();
    let mut rows = Vec::new();
    let mut snippet_total = 0.0;
    let mut optimal_total = 0.0;
    for (i, &tds) in samples.iter().enumerate() {
        let os = generate_os(&ctx, tds, None, OsSource::DataGraph);
        let ideal = panel.ideal(&os, 5, 0);
        let optimal = DpKnapsack.compute(&os, 5);
        let snippet = snippet_selection(&os, 3, 0xBEEF + i as u64);
        let s_overlap = snippet.overlap(&ideal);
        let o_overlap = optimal.overlap(&ideal);
        snippet_total += s_overlap as f64;
        optimal_total += o_overlap as f64;
        rows.push(vec![
            format!("OS {i} (|OS|={})", os.len()),
            s_overlap.to_string(),
            o_overlap.to_string(),
        ]);
    }
    out.push_str(&markdown_table(
        &["DS", "snippet ∩ evaluator size-5", "optimal size-5 ∩ evaluator size-5"],
        &rows,
    ));
    out.push_str(&format!(
        "\nAverages: snippet {:.2} common tuples, size-5 OS {:.2} — the paper found \"zero and exceptionally one\" for snippets.\n",
        snippet_total / samples.len() as f64,
        optimal_total / samples.len() as f64
    ));
    out
}

/// §6.3 data-graph statistics (build time, size).
pub fn datagraph_stats(bench: &Bench) -> String {
    let mut out = String::from("## §6.3 — data-graph statistics\n\n");
    let rows = vec![
        vec![
            "DBLP".to_string(),
            bench.dblp.db.total_tuples().to_string(),
            bench.dblp_dg.n_nodes().to_string(),
            bench.dblp_dg.n_adjacency_entries().to_string(),
            format!("{:.2}", bench.dblp_dg.approx_bytes() as f64 / 1e6),
            format!("{:.1}", bench.dblp_dg_ms),
        ],
        vec![
            "TPC-H".to_string(),
            bench.tpch.db.total_tuples().to_string(),
            bench.tpch_dg.n_nodes().to_string(),
            bench.tpch_dg.n_adjacency_entries().to_string(),
            format!("{:.2}", bench.tpch_dg.approx_bytes() as f64 / 1e6),
            format!("{:.1}", bench.tpch_dg_ms),
        ],
    ];
    out.push_str(&markdown_table(
        &["database", "tuples", "nodes", "adjacency entries", "approx MB", "build ms"],
        &rows,
    ));
    out
}

/// Ablations: paper-DP vs knapsack-DP, Top-Path vs its s(v) optimization,
/// avoidance conditions on/off (I/O accesses).
pub fn ablations(bench: &Bench) -> String {
    let mut out = String::from("## Ablations\n\n");

    // (1) DP variants.
    out.push_str(
        "### paper-DP (Algorithm 1, exponential) vs knapsack-DP (same optimum, O(n·l²))\n\n",
    );
    let ctx = bench.ctx(GdsKind::Author, 0);
    let tds = bench.samples(GdsKind::Author, 1)[0];
    let mut rows = Vec::new();
    for l in [4usize, 6, 8, 10, 12, 16] {
        let complete = generate_os(&ctx, tds, Some(l as u32 - 1), OsSource::DataGraph);
        let t_fast = time_ms(|| {
            std::hint::black_box(DpKnapsack.compute(&complete, l));
        });
        let dp = DpNaive { budget: 200_000_000 };
        let t0 = Instant::now();
        let (naive_cell, steps_cell, equal) = match dp.try_compute(&complete, l) {
            NaiveOutcome::Done(r, steps) => {
                let fast = DpKnapsack.compute(&complete, l);
                (
                    format!("{:.3}", t0.elapsed().as_secs_f64() * 1e3),
                    steps.to_string(),
                    (r.importance - fast.importance).abs() < 1e-9,
                )
            }
            NaiveOutcome::BudgetExceeded => (">cap".into(), ">2e8".into(), true),
        };
        rows.push(vec![
            format!("l={l}"),
            complete.len().to_string(),
            format!("{t_fast:.3}"),
            naive_cell,
            steps_cell,
            equal.to_string(),
        ]);
    }
    out.push_str(&markdown_table(
        &["l", "|OS|", "knapsack ms", "paper-DP ms", "paper-DP steps", "same optimum"],
        &rows,
    ));

    // (2) Top-Path variants.
    out.push_str("\n### Top-Path vs Top-Path with s(v) precomputation (§5.2)\n\n");
    let samples = bench.samples(GdsKind::Author, n_samples(bench));
    let mut rows = Vec::new();
    for l in [10usize, 30, 50] {
        let mut t_base = 0.0;
        let mut t_opt = 0.0;
        let mut q_base = 0.0;
        let mut q_opt = 0.0;
        for &tds in &samples {
            let complete = generate_os(&ctx, tds, Some(l as u32 - 1), OsSource::DataGraph);
            let optimum = DpKnapsack.compute(&complete, l).importance.max(1e-12);
            t_base += time_ms(|| {
                std::hint::black_box(TopPath.compute(&complete, l));
            });
            t_opt += time_ms(|| {
                std::hint::black_box(TopPathOpt.compute(&complete, l));
            });
            q_base += TopPath.compute(&complete, l).importance / optimum;
            q_opt += TopPathOpt.compute(&complete, l).importance / optimum;
        }
        let n = samples.len() as f64;
        rows.push(vec![
            format!("l={l}"),
            format!("{:.3}", t_base / n),
            format!("{:.3}", t_opt / n),
            format!("{:.1}%", 100.0 * q_base / n),
            format!("{:.1}%", 100.0 * q_opt / n),
        ]);
    }
    out.push_str(&markdown_table(
        &["l", "Top-Path ms", "s(v) ms", "Top-Path quality", "s(v) quality"],
        &rows,
    ));

    // (3) Avoidance conditions (database mode I/O), under both score
    // regimes: the paper's uncompressed ObjectRank skew prunes far more.
    out.push_str(
        "\n### Avoidance conditions: I/O accesses, complete vs prelim-l (database mode)\n\n",
    );
    let sup_samples = bench.samples(GdsKind::Supplier, n_samples(bench));
    let db = bench.db(DbKind::Tpch);
    let mut rows = Vec::new();
    for (regime, sup_ctx) in [
        ("compressed", bench.ctx(GdsKind::Supplier, 0)),
        ("raw-skew", bench.ctx_raw(GdsKind::Supplier)),
    ] {
        for l in [10usize, 50] {
            let mut joins_c = 0u64;
            let mut tuples_c = 0u64;
            let mut joins_p = 0u64;
            let mut tuples_p = 0u64;
            let mut c1 = 0u64;
            let mut c2 = 0u64;
            let mut size_c = 0usize;
            let mut size_p = 0usize;
            for &tds in &sup_samples {
                db.access().reset();
                let os = generate_os(&sup_ctx, tds, Some(l as u32 - 1), OsSource::Database);
                let s = db.access().snapshot();
                joins_c += s.joins;
                tuples_c += s.tuples;
                size_c += os.len();
                db.access().reset();
                let (p, st) = generate_prelim(&sup_ctx, tds, l, OsSource::Database);
                let s = db.access().snapshot();
                joins_p += s.joins;
                tuples_p += s.tuples;
                size_p += p.len();
                c1 += st.cond1_skips;
                c2 += st.cond2_probes;
            }
            let n = sup_samples.len() as f64;
            rows.push(vec![
                format!("{regime} l={l}"),
                format!("{:.0}", size_c as f64 / n),
                format!("{:.0}", size_p as f64 / n),
                format!("{:.0}", joins_c as f64 / n),
                format!("{:.0}", joins_p as f64 / n),
                format!("{:.0}", tuples_c as f64 / n),
                format!("{:.0}", tuples_p as f64 / n),
                format!("{:.0}", c1 as f64 / n),
                format!("{:.0}", c2 as f64 / n),
            ]);
        }
    }
    out.push_str(&markdown_table(
        &[
            "regime",
            "|OS|",
            "|prelim|",
            "joins C",
            "joins P",
            "tuples C",
            "tuples P",
            "cond1 skips",
            "cond2 probes",
        ],
        &rows,
    ));
    out
}

/// The §7 incremental-computation analysis: similarity of optimal size-l
/// and size-(l-1) OSs ("optimal size-l OSs for different l could be very
/// different. This prevents the incremental computation ...").
pub fn consecutive(bench: &Bench) -> String {
    let mut out = String::from(
        "## §7 — similarity of consecutive optimal size-l OSs (Jaccard; `nested` = size-(l-1) ⊂ size-l)\n\n",
    );
    let ctx = bench.ctx(GdsKind::Author, 0);
    let tds = bench.samples(GdsKind::Author, 1)[0];
    let os = generate_os(&ctx, tds, Some(29), OsSource::DataGraph);
    let sims = sizel_core::eval::consecutive_optima_similarity(&os, 30);
    let mut rows = Vec::new();
    let mut non_nested = 0;
    for (l, j, nested) in &sims {
        if !nested {
            non_nested += 1;
        }
        rows.push(vec![l.to_string(), format!("{j:.3}"), nested.to_string()]);
    }
    out.push_str(&markdown_table(&["l", "Jaccard(S*_l, S*_{l-1})", "nested"], &rows));
    out.push_str(&format!(
        "\n{} of {} consecutive pairs are NOT nested — confirming the paper's \
         observation that incremental size-l computation is unsound in general.\n",
        non_nested,
        sims.len()
    ));
    out
}

/// The §7 word-budget reformulation: summaries constrained by rendered
/// word count instead of tuple count.
pub fn wordbudget(bench: &Bench) -> String {
    let mut out =
        String::from("## §7 extension — word-budget summaries (cost = rendered word count)\n\n");
    let ctx = bench.ctx(GdsKind::Author, 0);
    let db = bench.db(DbKind::Dblp);
    let tds = bench.samples(GdsKind::Author, 1)[0];
    let os = generate_os(&ctx, tds, Some(29), OsSource::DataGraph);
    // Cost of a node = number of words across its display columns + 1 for
    // the label.
    let word_cost = |id: sizel_core::os::OsNodeId| -> usize {
        let n = os.node(id);
        let table = db.table(n.tuple.table);
        let row = table.row(n.tuple.row);
        let words: usize = table
            .schema
            .display_columns()
            .map(|c| row[c].to_string().split_whitespace().count())
            .sum();
        words + 1
    };
    let mut rows = Vec::new();
    for budget in [20usize, 50, 100, 200] {
        let r = sizel_core::algo::WordBudgetDp.compute(&os, budget, &word_cost);
        let used: usize = r.selected.iter().map(|&id| word_cost(id)).sum();
        rows.push(vec![
            budget.to_string(),
            r.len().to_string(),
            used.to_string(),
            format!("{:.3}", r.importance),
        ]);
    }
    out.push_str(&markdown_table(&["word budget W", "tuples", "words used", "Im(S)"], &rows));
    out.push_str(
        "\nTuple counts adapt to the budget — the \"20 attributes or 50 words\" \
         selection rule the paper sketches, solved exactly by the budgeted tree DP.\n",
    );
    out
}

/// Calibration report: measured average |OS| per GDS vs the paper's.
pub fn calibrate(bench: &Bench) -> String {
    let paper = [
        ("DBLP Author", 1116.0),
        ("DBLP Paper", 367.0),
        ("TPC-H Customer", 176.0),
        ("TPC-H Supplier", 1341.0),
    ];
    let mut out = String::from("## Calibration — Aver|OS| per GDS (paper vs measured)\n\n");
    let mut rows = Vec::new();
    for (kind, (label, expect)) in GdsKind::ALL.into_iter().zip(paper) {
        let ctx = bench.ctx(kind, 0);
        let samples = bench.samples(kind, n_samples(bench));
        let avg: f64 = samples
            .iter()
            .map(|&t| generate_os(&ctx, t, None, OsSource::DataGraph).len() as f64)
            .sum::<f64>()
            / samples.len() as f64;
        rows.push(vec![label.to_string(), format!("{expect:.0}"), format!("{avg:.0}")]);
    }
    out.push_str(&markdown_table(&["GDS", "paper Aver|OS|", "measured Aver|OS|"], &rows));
    out
}

/// Sanity helper used by integration tests: the optimal importance per
/// result must dominate every greedy method on the same input.
pub fn verify_dominance(os: &Os, l: usize) -> (SizeLResult, Vec<(AlgoKind, SizeLResult)>) {
    let opt = DpKnapsack.compute(os, l);
    let others: Vec<(AlgoKind, SizeLResult)> =
        [AlgoKind::BottomUp, AlgoKind::TopPath, AlgoKind::TopPathOpt]
            .into_iter()
            .map(|k| (k, k.algorithm().compute(os, l)))
            .collect();
    (opt, others)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn bench() -> &'static Bench {
        static B: OnceLock<Bench> = OnceLock::new();
        B.get_or_init(|| Bench::new(true))
    }

    #[test]
    fn fig9_tables_have_expected_shape() {
        let out = fig9(bench());
        assert!(out.contains("DBLP Author"));
        assert!(out.contains("TPC-H Supplier"));
        assert!(out.contains("Update Top-Path-l (Prelim-l OS)"));
        // Every percentage is <= 100.
        for token in out.split_whitespace().filter(|t| t.ends_with("%")) {
            let v: f64 = token.trim_end_matches('%').parse().unwrap_or(0.0);
            assert!(v <= 100.0 + 1e-9, "quality ratio above 100%: {token}");
            assert!(v >= 0.0);
        }
    }

    #[test]
    fn fig10f_and_stats_render() {
        let out = fig10f(bench());
        assert!(out.contains("gen complete (graph)"));
        let out = datagraph_stats(bench());
        assert!(out.contains("DBLP"));
        assert!(out.contains("TPC-H"));
    }

    #[test]
    fn show_outputs_render() {
        assert!(show_gds(bench()).contains("Author (1.00)"));
        let ga = show_ga(bench());
        assert!(ga.contains("GA1"));
        assert!(ga.contains("value functions"));
        let e = example45(bench());
        assert!(e.contains("Example 5"));
    }

    #[test]
    fn verify_dominance_holds_on_fixture() {
        let b = bench();
        let ctx = b.ctx(GdsKind::Author, 0);
        let tds = b.samples(GdsKind::Author, 1)[0];
        let os = generate_os(&ctx, tds, Some(14), OsSource::DataGraph);
        let (opt, others) = verify_dominance(&os, 15);
        for (kind, r) in others {
            assert!(r.importance <= opt.importance + 1e-9, "{:?} beat the optimum", kind);
        }
    }
}
