//! Shared workbench for the experiment harness (`repro` binary) and the
//! Criterion benches.
//!
//! [`Bench::new`] builds both evaluation databases, their graphs, and the
//! four ranking settings of Section 6 (GA1-d1, GA1-d2, GA1-d3, GA2-d1),
//! plus one GDS per (DS relation, setting) with `max/mmax` stats. The
//! `fig*` functions in [`figures`] regenerate each table/figure of the
//! paper and return printable markdown.

use std::collections::HashMap;

use sizel_core::osgen::OsContext;
use sizel_datagen::dblp::{self, Dblp, DblpConfig};
use sizel_datagen::tpch::{self, Tpch, TpchConfig};
use sizel_graph::{presets, DataGraph, Gds, SchemaGraph};
use sizel_rank::{compute, dblp_ga, tpch_ga, GaPreset, RankConfig, RankScores};
use sizel_storage::{Database, RowId, TableId, TupleRef};
use sizel_util::prng::Prng;

pub mod figures;

/// Which database a case runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DbKind {
    /// Synthetic DBLP.
    Dblp,
    /// Synthetic TPC-H.
    Tpch,
}

/// The four GDS cases of the evaluation (Figures 8-10 panels a-d).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GdsKind {
    /// DBLP Author GDS.
    Author,
    /// DBLP Paper GDS.
    Paper,
    /// TPC-H Customer GDS.
    Customer,
    /// TPC-H Supplier GDS.
    Supplier,
}

impl GdsKind {
    /// All four cases in the paper's panel order.
    pub const ALL: [GdsKind; 4] =
        [GdsKind::Author, GdsKind::Paper, GdsKind::Customer, GdsKind::Supplier];

    /// The database the case runs on.
    pub fn db(self) -> DbKind {
        match self {
            GdsKind::Author | GdsKind::Paper => DbKind::Dblp,
            GdsKind::Customer | GdsKind::Supplier => DbKind::Tpch,
        }
    }

    /// Panel label, as the paper prints it.
    pub fn label(self) -> &'static str {
        match self {
            GdsKind::Author => "DBLP Author",
            GdsKind::Paper => "DBLP Paper",
            GdsKind::Customer => "TPC-H Customer",
            GdsKind::Supplier => "TPC-H Supplier",
        }
    }
}

/// A ranking setting: GA preset + damping factor (Section 6: "two GAs ...
/// and three values of d").
#[derive(Clone, Copy, Debug)]
pub struct Setting {
    /// Display name (`GA1-d1`, ...).
    pub name: &'static str,
    /// The GA preset.
    pub ga: GaPreset,
    /// Damping factor.
    pub d: f64,
}

/// The paper's four evaluated settings; index 0 (GA1-d1) is the default
/// and the evaluator panel's anchor.
pub const SETTINGS: [Setting; 4] = [
    Setting { name: "GA1-d1", ga: GaPreset::Ga1, d: 0.85 },
    Setting { name: "GA1-d2", ga: GaPreset::Ga1, d: 0.10 },
    Setting { name: "GA1-d3", ga: GaPreset::Ga1, d: 0.99 },
    Setting { name: "GA2-d1", ga: GaPreset::Ga2, d: 0.85 },
];

/// The fully-built workbench.
pub struct Bench {
    /// DBLP database + handles.
    pub dblp: Dblp,
    /// DBLP schema graph.
    pub dblp_sg: SchemaGraph,
    /// DBLP data graph.
    pub dblp_dg: DataGraph,
    /// Milliseconds spent building the DBLP data graph (§6.3 report).
    pub dblp_dg_ms: f64,
    /// TPC-H database + handles.
    pub tpch: Tpch,
    /// TPC-H schema graph.
    pub tpch_sg: SchemaGraph,
    /// TPC-H data graph.
    pub tpch_dg: DataGraph,
    /// Milliseconds spent building the TPC-H data graph.
    pub tpch_dg_ms: f64,
    /// Whether quick (CI-sized) databases are in use.
    pub quick: bool,
    scores: HashMap<(DbKind, usize), RankScores>,
    gds: HashMap<(GdsKind, usize), Gds>,
    /// GA1-d1 scores *without* log compression (heavier skew), used by the
    /// avoidance-condition ablation: the paper's uncompressed ObjectRank
    /// regime prunes much more aggressively.
    raw_scores: HashMap<DbKind, RankScores>,
    raw_gds: HashMap<GdsKind, Gds>,
}

impl Bench {
    /// Builds the workbench. `quick = true` uses the small test databases
    /// (seconds); `quick = false` the calibrated benchmark databases.
    pub fn new(quick: bool) -> Bench {
        let dblp_cfg = if quick { DblpConfig::small() } else { DblpConfig::bench() };
        let tpch_cfg = if quick { TpchConfig::tiny() } else { TpchConfig::bench() };
        let mut d = dblp::generate(&dblp_cfg);
        let mut t = tpch::generate(&tpch_cfg);
        let dblp_sg = SchemaGraph::from_database(&d.db);
        let tpch_sg = SchemaGraph::from_database(&t.db);
        let t0 = std::time::Instant::now();
        let dblp_dg = DataGraph::build(&d.db, &dblp_sg);
        let dblp_dg_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = std::time::Instant::now();
        let tpch_dg = DataGraph::build(&t.db, &tpch_sg);
        let tpch_dg_ms = t0.elapsed().as_secs_f64() * 1e3;

        let mut scores = HashMap::new();
        for (i, s) in SETTINGS.iter().enumerate() {
            // d3 = 0.99 converges slowly; a looser epsilon keeps builds
            // fast without changing relative order materially.
            let cfg = RankConfig {
                damping: s.d,
                epsilon: if s.d > 0.95 { 1e-7 } else { 1e-9 },
                max_iterations: 2000,
                ..RankConfig::default()
            };
            let ga = dblp_ga(s.ga, &d.db, &dblp_sg, &dblp_dg);
            scores.insert((DbKind::Dblp, i), compute(&d.db, &dblp_sg, &dblp_dg, &ga, &cfg));
            let ga = tpch_ga(s.ga, &t.db, &tpch_sg, &tpch_dg);
            scores.insert((DbKind::Tpch, i), compute(&t.db, &tpch_sg, &tpch_dg, &ga, &cfg));
        }

        // Install the reference setting's (GA1-d1) importance order so the
        // Database-source benches run TOP-l probes as sorted prefix scans;
        // the other settings' contexts fall back to the heap path (their
        // scores never stamped an order).
        let mut s0 = scores.remove(&(DbKind::Dblp, 0)).expect("setting 0 computed");
        sizel_rank::install_importance_order(&mut d.db, &dblp_dg, &mut s0);
        scores.insert((DbKind::Dblp, 0), s0);
        let mut s0 = scores.remove(&(DbKind::Tpch, 0)).expect("setting 0 computed");
        sizel_rank::install_importance_order(&mut t.db, &tpch_dg, &mut s0);
        scores.insert((DbKind::Tpch, 0), s0);

        // Uncompressed GA1-d1 scores for the avoidance-condition ablation.
        let mut raw_scores = HashMap::new();
        let raw_cfg = RankConfig { log_compress: false, ..RankConfig::default() };
        let ga = dblp_ga(GaPreset::Ga1, &d.db, &dblp_sg, &dblp_dg);
        raw_scores.insert(DbKind::Dblp, compute(&d.db, &dblp_sg, &dblp_dg, &ga, &raw_cfg));
        let ga = tpch_ga(GaPreset::Ga1, &t.db, &tpch_sg, &tpch_dg);
        raw_scores.insert(DbKind::Tpch, compute(&t.db, &tpch_sg, &tpch_dg, &ga, &raw_cfg));

        let mut gds = HashMap::new();
        let mut raw_gds = HashMap::new();
        for kind in GdsKind::ALL {
            let (db, sg, root, cfg) = match kind {
                GdsKind::Author => (&d.db, &dblp_sg, d.author, presets::dblp_author_gds_config()),
                GdsKind::Paper => (&d.db, &dblp_sg, d.paper, presets::dblp_paper_gds_config()),
                GdsKind::Customer => {
                    (&t.db, &tpch_sg, t.customer, presets::tpch_customer_gds_config())
                }
                GdsKind::Supplier => {
                    (&t.db, &tpch_sg, t.supplier, presets::tpch_supplier_gds_config())
                }
            };
            let base = Gds::build(db, sg, &cfg, root).restrict(cfg.theta);
            for (i, _) in SETTINGS.iter().enumerate() {
                let mut g = base.clone();
                g.set_stats(&scores[&(kind.db(), i)].per_table_max);
                gds.insert((kind, i), g);
            }
            let mut g = base;
            g.set_stats(&raw_scores[&kind.db()].per_table_max);
            raw_gds.insert(kind, g);
        }

        Bench {
            dblp: d,
            dblp_sg,
            dblp_dg,
            dblp_dg_ms,
            tpch: t,
            tpch_sg,
            tpch_dg,
            tpch_dg_ms,
            quick,
            scores,
            gds,
            raw_scores,
            raw_gds,
        }
    }

    /// The database of a kind.
    pub fn db(&self, kind: DbKind) -> &Database {
        match kind {
            DbKind::Dblp => &self.dblp.db,
            DbKind::Tpch => &self.tpch.db,
        }
    }

    /// Scores for `(db, setting)`.
    pub fn scores(&self, db: DbKind, setting: usize) -> &RankScores {
        &self.scores[&(db, setting)]
    }

    /// The GDS of `(kind, setting)`.
    pub fn gds(&self, kind: GdsKind, setting: usize) -> &Gds {
        &self.gds[&(kind, setting)]
    }

    /// An [`OsContext`] for a GDS case under a setting.
    pub fn ctx(&self, kind: GdsKind, setting: usize) -> OsContext<'_> {
        match kind.db() {
            DbKind::Dblp => OsContext::new(
                &self.dblp.db,
                &self.dblp_sg,
                &self.dblp_dg,
                self.gds(kind, setting),
                self.scores(DbKind::Dblp, setting),
            ),
            DbKind::Tpch => OsContext::new(
                &self.tpch.db,
                &self.tpch_sg,
                &self.tpch_dg,
                self.gds(kind, setting),
                self.scores(DbKind::Tpch, setting),
            ),
        }
    }

    /// An [`OsContext`] for a GDS case under *uncompressed* GA1-d1 scores
    /// (the paper's heavier-skew ObjectRank regime).
    pub fn ctx_raw(&self, kind: GdsKind) -> OsContext<'_> {
        match kind.db() {
            DbKind::Dblp => OsContext::new(
                &self.dblp.db,
                &self.dblp_sg,
                &self.dblp_dg,
                &self.raw_gds[&kind],
                &self.raw_scores[&DbKind::Dblp],
            ),
            DbKind::Tpch => OsContext::new(
                &self.tpch.db,
                &self.tpch_sg,
                &self.tpch_dg,
                &self.raw_gds[&kind],
                &self.raw_scores[&DbKind::Tpch],
            ),
        }
    }

    /// Samples `n` data subjects for a GDS case — the paper's "10 random
    /// OSs per GDS". DBLP cases draw from a connectivity band calibrated to
    /// the paper's Aver|OS| regime (real DBLP's head is far heavier than
    /// our synthetic average author, and the paper's random draws clearly
    /// hit prolific DSs: Aver|OS| = 1116 / 367); TPC-H cases draw from the
    /// upper half. Falls back to the upper half when the band is too thin
    /// (quick-mode databases). Deterministic per kind.
    pub fn samples(&self, kind: GdsKind, n: usize) -> Vec<TupleRef> {
        let (table, degree): (TableId, Box<dyn Fn(RowId) -> usize + '_>) = match kind {
            GdsKind::Author => {
                let ap = self.dblp.db.table(self.dblp.author_paper);
                let col = ap.schema.column_index("author_id").expect("schema");
                let authors = self.dblp.db.table(self.dblp.author);
                (self.dblp.author, Box::new(move |r| ap.rows_where_eq(col, authors.pk_of(r)).len()))
            }
            GdsKind::Paper => {
                let c = self.dblp.db.table(self.dblp.citation);
                let col = c.schema.column_index("cited_id").expect("schema");
                let papers = self.dblp.db.table(self.dblp.paper);
                (self.dblp.paper, Box::new(move |r| c.rows_where_eq(col, papers.pk_of(r)).len()))
            }
            GdsKind::Customer => {
                let o = self.tpch.db.table(self.tpch.orders);
                let col = o.schema.column_index("cust_id").expect("schema");
                let customers = self.tpch.db.table(self.tpch.customer);
                (
                    self.tpch.customer,
                    Box::new(move |r| o.rows_where_eq(col, customers.pk_of(r)).len()),
                )
            }
            GdsKind::Supplier => {
                let ps = self.tpch.db.table(self.tpch.partsupp);
                let col = ps.schema.column_index("supp_id").expect("schema");
                let suppliers = self.tpch.db.table(self.tpch.supplier);
                (
                    self.tpch.supplier,
                    Box::new(move |r| ps.rows_where_eq(col, suppliers.pk_of(r)).len()),
                )
            }
        };
        let t = self.db(kind.db()).table(table);
        let mut ranked: Vec<(usize, RowId)> = t.iter().map(|(rid, _)| (degree(rid), rid)).collect();
        ranked.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        // Connectivity bands matching the paper's Aver|OS| per GDS.
        let band: Option<(usize, usize)> = match kind {
            GdsKind::Author => Some((75, 175)), // papers -> |OS| ~ 750..1750
            GdsKind::Paper => Some((200, 800)), // cited-by -> |OS| ~ 210..820
            GdsKind::Customer | GdsKind::Supplier => None,
        };
        let mut rng = Prng::new(0x5A11 ^ kind as u64);
        if let Some((lo, hi)) = band {
            let in_band: Vec<RowId> =
                ranked.iter().filter(|(d, _)| (lo..=hi).contains(d)).map(|&(_, r)| r).collect();
            if in_band.len() >= n {
                let picks = rng.sample_distinct(in_band.len(), n);
                return picks.into_iter().map(|i| TupleRef::new(table, in_band[i])).collect();
            }
        }
        let upper = (ranked.len() / 2).max(n.min(ranked.len()));
        let picks = rng.sample_distinct(upper, n.min(upper));
        picks.into_iter().map(|i| TupleRef::new(table, ranked[i].1)).collect()
    }

    /// The famous-author ladder for the Figure 10(e) scalability axis,
    /// ordered by ascending paper count.
    pub fn ladder(&self) -> Vec<(String, TupleRef)> {
        let authors = self.dblp.db.table(self.dblp.author);
        let mut out: Vec<(String, TupleRef)> = self
            .dblp
            .famous
            .iter()
            .map(|(name, pk)| {
                let rid = authors.by_pk(*pk).expect("famous author exists");
                (name.clone(), TupleRef::new(self.dblp.author, rid))
            })
            .collect();
        out.reverse(); // specs are ordered by descending paper count
        out
    }
}

/// Formats a markdown table from a header and rows.
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&header.join(" | "));
    out.push_str(" |\n|");
    for _ in header {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_builds_everything() {
        let b = Bench::new(true);
        for kind in GdsKind::ALL {
            for (i, _) in SETTINGS.iter().enumerate() {
                let g = b.gds(kind, i);
                assert!(g.len() >= 3, "{kind:?} setting {i}");
                // Stats must be populated.
                assert!(g.node(g.root()).mmax_ri > 0.0);
            }
            let samples = b.samples(kind, 5);
            assert_eq!(samples.len(), 5);
            let mut dedup = samples.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(dedup.len(), 5, "samples must be distinct");
        }
        let ladder = b.ladder();
        assert_eq!(ladder.len(), 3, "small preset pins three famous authors");
    }

    #[test]
    fn samples_are_deterministic() {
        let b = Bench::new(true);
        assert_eq!(b.samples(GdsKind::Author, 4), b.samples(GdsKind::Author, 4));
    }

    #[test]
    fn markdown_table_shape() {
        let t = markdown_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert!(t.contains("| a | b |"));
        assert!(t.contains("| 1 | 2 |"));
    }
}
