//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p sizel-bench --bin repro -- all            # everything
//! cargo run --release -p sizel-bench --bin repro -- fig9 --quick  # one figure, small DBs
//! ```
//!
//! Subcommands: `all`, `fig8`, `fig9`, `fig10`, `fig10e`, `fig10f`,
//! `show-gds`, `show-ga`, `example45`, `snippet-baseline`,
//! `datagraph-stats`, `ablations`, `calibrate`.
//!
//! `--quick` switches to the small test databases (seconds instead of
//! minutes); the default is the calibrated benchmark scale recorded in
//! EXPERIMENTS.md.

use std::io::Write as _;
use std::time::Instant;

use sizel_bench::{figures, Bench};

const USAGE: &str = "usage: repro <all|fig8|fig9|fig10|fig10e|fig10f|show-gds|show-ga|example45|snippet-baseline|datagraph-stats|ablations|calibrate|consecutive|wordbudget> [--quick]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let commands: Vec<&str> =
        args.iter().filter(|a| !a.starts_with("--")).map(|s| s.as_str()).collect();
    let command = *commands.first().unwrap_or(&"all");

    let known = [
        "all",
        "fig8",
        "fig9",
        "fig10",
        "fig10e",
        "fig10f",
        "show-gds",
        "show-ga",
        "example45",
        "snippet-baseline",
        "datagraph-stats",
        "ablations",
        "calibrate",
        "consecutive",
        "wordbudget",
    ];
    if !known.contains(&command) {
        eprintln!("unknown subcommand `{command}`\n{USAGE}");
        std::process::exit(2);
    }

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let t0 = Instant::now();
    writeln!(
        out,
        "# Size-l OS reproduction harness ({} scale)\n",
        if quick { "quick" } else { "benchmark" }
    )
    .expect("stdout");
    let bench = Bench::new(quick);
    writeln!(
        out,
        "workbench ready in {:.1}s — DBLP {} tuples, TPC-H {} tuples\n",
        t0.elapsed().as_secs_f64(),
        bench.dblp.db.total_tuples(),
        bench.tpch.db.total_tuples()
    )
    .expect("stdout");

    let mut run = |name: &str, f: &dyn Fn(&Bench) -> String| {
        if command == "all" || command == name {
            let t = Instant::now();
            let body = f(&bench);
            writeln!(out, "{body}").expect("stdout");
            writeln!(out, "[{name} done in {:.1}s]\n", t.elapsed().as_secs_f64()).expect("stdout");
        }
    };

    run("calibrate", &figures::calibrate);
    run("show-gds", &figures::show_gds);
    run("show-ga", &figures::show_ga);
    run("example45", &figures::example45);
    run("fig8", &figures::fig8);
    run("fig9", &figures::fig9);
    run("fig10", &figures::fig10);
    run("fig10e", &figures::fig10e);
    run("fig10f", &figures::fig10f);
    run("snippet-baseline", &figures::snippet_baseline);
    run("datagraph-stats", &figures::datagraph_stats);
    run("ablations", &figures::ablations);
    run("consecutive", &figures::consecutive);
    run("wordbudget", &figures::wordbudget);
}
