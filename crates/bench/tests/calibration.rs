//! Calibration regression: average |OS| per GDS at benchmark scale must
//! stay pinned to the paper's Section 6 table (EXPERIMENTS.md records the
//! same numbers). A datagen or sampling change that silently drifts a
//! workload out of the paper's regime fails here, not three PRs later in
//! an unexplainable benchmark shift.

use sizel_bench::{Bench, GdsKind};
use sizel_core::osgen::{generate_os, OsSource};

/// `(kind, paper Aver|OS|, relative tolerance)`. DBLP tolerances are the
/// ±15% target of the recalibration; TPC-H Supplier gets ±20% — it has sat
/// ~18% high since the seed (synthetic Partsupp/Lineitem fan-out, not
/// touched by the DBLP recalibration) and is pinned here against *further*
/// drift.
const PINS: [(GdsKind, f64, f64); 4] = [
    (GdsKind::Author, 1116.0, 0.15),
    (GdsKind::Paper, 367.0, 0.15),
    (GdsKind::Customer, 176.0, 0.15),
    (GdsKind::Supplier, 1341.0, 0.20),
];

#[test]
fn bench_scale_aver_os_matches_paper_table() {
    // The paper's measurement: 10 random OSs per GDS, benchmark scale.
    let bench = Bench::new(false);
    for (kind, paper, tolerance) in PINS {
        let ctx = bench.ctx(kind, 0);
        let samples = bench.samples(kind, 10);
        let avg: f64 = samples
            .iter()
            .map(|&t| generate_os(&ctx, t, None, OsSource::DataGraph).len() as f64)
            .sum::<f64>()
            / samples.len() as f64;
        let ratio = avg / paper;
        assert!(
            (ratio - 1.0).abs() <= tolerance,
            "{}: measured Aver|OS| {avg:.0} vs paper {paper:.0} \
             (ratio {ratio:.3}, tolerance ±{}%)",
            kind.label(),
            tolerance * 100.0,
        );
    }
}

#[test]
fn paper_band_samples_are_well_cited_papers() {
    // The Paper-GDS draws must come from the head of the citation
    // distribution (the paper's Aver|OS| = 367 is unreachable from the
    // long tail), and the band must be thick enough to sample from — if
    // fan-in thins out, `samples` silently falls back to the upper half
    // and the calibration above collapses.
    let bench = Bench::new(false);
    let citation = bench.dblp.db.table(bench.dblp.citation);
    let cited_col = citation.schema.column_index("cited_id").expect("schema");
    let papers = bench.dblp.db.table(bench.dblp.paper);
    let samples = bench.samples(GdsKind::Paper, 10);
    for t in samples {
        let cited_by = citation.rows_where_eq(cited_col, papers.pk_of(t.row)).len();
        assert!(
            cited_by >= 200,
            "sampled paper with only {cited_by} citations — band fallback triggered?"
        );
    }
}
