//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * the paper's Algorithm-1 DP (exponential child-combination enumeration)
//!   vs the knapsack-merge DP that computes the same optimum in O(n·l²);
//! * Top-Path vs the §5.2 `s(v)` precomputation variant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use sizel_bench::{Bench, GdsKind};
use sizel_core::algo::{DpKnapsack, DpNaive, SizeLAlgorithm, TopPath, TopPathOpt};
use sizel_core::osgen::{generate_os, OsSource};

fn full_scale() -> bool {
    std::env::var("SIZEL_BENCH_FULL").is_ok_and(|v| v == "1")
}

fn bench_dp_variants(c: &mut Criterion) {
    let bench = Bench::new(!full_scale());
    let ctx = bench.ctx(GdsKind::Author, 0);
    let tds = bench.samples(GdsKind::Author, 1)[0];
    let mut group = c.benchmark_group("ablation/dp");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(1));
    for l in [4usize, 8, 12] {
        let os = generate_os(&ctx, tds, Some(l as u32 - 1), OsSource::DataGraph);
        group.bench_with_input(BenchmarkId::new("knapsack", l), &l, |b, &l| {
            b.iter(|| black_box(DpKnapsack.compute(black_box(&os), l)))
        });
        // The naive DP is budgeted so the bench cannot hang; exceeding the
        // budget still costs the budgeted work, which is the honest number.
        let naive = DpNaive { budget: 20_000_000 };
        group.bench_with_input(BenchmarkId::new("paper_naive", l), &l, |b, &l| {
            b.iter(|| black_box(naive.try_compute(black_box(&os), l)))
        });
    }
    group.finish();
}

fn bench_top_path_variants(c: &mut Criterion) {
    let bench = Bench::new(!full_scale());
    let ctx = bench.ctx(GdsKind::Author, 0);
    let tds = bench.samples(GdsKind::Author, 1)[0];
    let mut group = c.benchmark_group("ablation/top_path");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(1));
    for l in [10usize, 50] {
        let os = generate_os(&ctx, tds, Some(l as u32 - 1), OsSource::DataGraph);
        group.bench_with_input(BenchmarkId::new("reference", l), &l, |b, &l| {
            b.iter(|| black_box(TopPath.compute(black_box(&os), l)))
        });
        group.bench_with_input(BenchmarkId::new("s_of_v", l), &l, |b, &l| {
            b.iter(|| black_box(TopPathOpt.compute(black_box(&os), l)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dp_variants, bench_top_path_variants);
criterion_main!(benches);
