//! Serving-layer throughput: queries/second against worker-pool size on
//! the fig10 DBLP workload (benchmark-scale database, the famous-author
//! head plus band-sampled DSs, l and algorithm crossed as in Figure 10).
//!
//! Three regimes per thread count:
//! * `uncached` — cache disabled: pure worker-pool scaling of the
//!   sequential engine (the ≥2× at 4 workers acceptance bar).
//! * `warm-cache` — cache enabled; it warms during the first iteration
//!   (emptying it between batches would require rebuilding the server),
//!   so reported numbers are the steady state.
//! * `sequential` — the PR-1 engine loop, the 1-thread baseline.
//!
//! `SIZEL_BENCH_FULL=1` uses more samples; the default keeps `cargo
//! bench` under a minute.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::{Arc, OnceLock, RwLock};

use sizel_core::algo::AlgoKind;
use sizel_core::engine::{EngineConfig, QueryOptions, SizeLEngine};
use sizel_datagen::dblp::{generate, DblpConfig};
use sizel_graph::presets;
use sizel_rank::{dblp_ga, GaPreset};
use sizel_serve::{ServeConfig, SizeLServer};

fn engine() -> Arc<RwLock<SizeLEngine>> {
    static E: OnceLock<Arc<RwLock<SizeLEngine>>> = OnceLock::new();
    Arc::clone(E.get_or_init(|| {
        let d = generate(&DblpConfig::bench());
        Arc::new(RwLock::new(
            SizeLEngine::build(
                d.db,
                |db, sg, dg| dblp_ga(GaPreset::Ga1, db, sg, dg),
                EngineConfig::new(vec![
                    ("Author".into(), presets::dblp_author_gds_config()),
                    ("Paper".into(), presets::dblp_paper_gds_config()),
                ]),
            )
            .expect("bench DBLP engine builds"),
        ))
    }))
}

/// The fig10 DBLP workload: the famous-author ladder keywords crossed
/// with Figure 10's l axis (subset) and both greedy methods, on prelim
/// and complete inputs.
fn workload() -> Vec<(String, QueryOptions)> {
    let keywords = [
        "Christos Faloutsos",
        "Michalis Faloutsos",
        "Petros Faloutsos",
        "Ariadne Metaxa",
        "Stavros Koronis",
        "Faloutsos",
    ];
    let mut set = Vec::new();
    for kw in keywords {
        for l in [10usize, 30, 50] {
            for algo in [AlgoKind::TopPath, AlgoKind::BottomUp] {
                for prelim in [true, false] {
                    set.push((
                        kw.to_owned(),
                        QueryOptions { l, algo, prelim, ..QueryOptions::default() },
                    ));
                }
            }
        }
    }
    set
}

fn bench_serve_throughput(c: &mut Criterion) {
    let engine = engine();
    let set = workload();
    let full = std::env::var("SIZEL_BENCH_FULL").is_ok_and(|v| v == "1");

    let mut group = c.benchmark_group("serve_throughput_fig10_dblp");
    group.sample_size(if full { 20 } else { 10 });
    group.measurement_time(std::time::Duration::from_secs(if full { 5 } else { 2 }));

    // The PR-1 sequential engine: the 1× reference.
    group.bench_with_input(BenchmarkId::new("sequential", 1), &set, |b, set| {
        let engine = engine.read().unwrap();
        b.iter(|| {
            for (kw, opts) in set {
                criterion::black_box(engine.query_with(kw, *opts));
            }
        });
    });

    for threads in [1usize, 2, 4, 8] {
        // Worker-pool scaling with caching off: every query recomputes.
        let server = SizeLServer::from_shared(
            Arc::clone(&engine),
            ServeConfig {
                workers: threads,
                queue_capacity: set.len(),
                cache_capacity: 0,
                cache_shards: 16,
                ..ServeConfig::default()
            },
        );
        group.bench_with_input(BenchmarkId::new("uncached", threads), &set, |b, set| {
            b.iter(|| {
                criterion::black_box(server.batch_query(set));
            });
        });

        // Steady-state with the summary cache: after the first iteration
        // every (tds, l, algo, prelim, source) is a hit.
        let server = SizeLServer::from_shared(
            Arc::clone(&engine),
            ServeConfig {
                workers: threads,
                queue_capacity: set.len(),
                cache_capacity: 4096,
                cache_shards: 16,
                ..ServeConfig::default()
            },
        );
        group.bench_with_input(BenchmarkId::new("warm-cache", threads), &set, |b, set| {
            b.iter(|| {
                criterion::black_box(server.batch_query(set));
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_serve_throughput);
criterion_main!(benches);
