//! Update-workload throughput (ISSUE 4, extended by ISSUE 6 to the full
//! mutation model): a mixed mutation/query stream against the
//! epoch-versioned server, with the prefix-scan retention that motivates
//! the incremental maintenance reported as a probe-mix ratio.
//!
//! Five regimes over the same Database-source query workload (the one
//! that actually drives TOP-l probes):
//! * `query_only` — no mutations: the steady-state ceiling.
//! * `mixed_incremental` — one incremental insert per batch: sorted
//!   postings binary-maintained, token re-stamped, scores spliced. PR 3's
//!   snapshot design would heap-fall-back *permanently* after the first
//!   insert; here the fast-path ratio stays ~1 (printed after the run).
//! * `mixed_exact` — one exact-refresh insert per batch: the escape
//!   hatch's full re-derivation cost (power iteration + reinstall), as a
//!   reference for what the incremental path avoids.
//! * `churn_incremental` — inserts, a trailing rename, and a trailing
//!   unlink-then-delete per batch (ISSUE 6): tombstone-then-compact
//!   maintenance, keyword re-tokenization, and dangling-watch repair all
//!   on the hot path; the probe mix must stay fast across the tombstones.
//! * `churn_exact` — the same update/delete stream with the exact escape
//!   hatch; the ≥3× gap against `churn_incremental` is the headline
//!   number EXPERIMENTS.md §PR 6 records.
//!
//! `SIZEL_BENCH_FULL=1` uses more samples; the default keeps `cargo
//! bench` fast.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, RwLock};

use sizel_core::engine::{EngineConfig, Mutation, QueryOptions, SizeLEngine};
use sizel_core::osgen::OsSource;
use sizel_core::test_fixtures::max_pk;
use sizel_datagen::dblp::{generate, DblpConfig};
use sizel_graph::presets;
use sizel_rank::{dblp_ga, GaPreset};
use sizel_serve::{ServeConfig, SizeLServer};
use sizel_storage::Value;

fn build_engine() -> Arc<RwLock<SizeLEngine>> {
    let d = generate(&DblpConfig::small());
    Arc::new(RwLock::new(
        SizeLEngine::build(
            d.db,
            |db, sg, dg| dblp_ga(GaPreset::Ga1, db, sg, dg),
            EngineConfig::new(vec![
                ("Author".into(), presets::dblp_author_gds_config()),
                ("Paper".into(), presets::dblp_paper_gds_config()),
            ]),
        )
        .expect("small DBLP engine builds"),
    ))
}

/// Database-source prelim queries: the workload whose TOP-l probes the
/// sorted postings serve (DataGraph-source queries never touch them).
fn workload() -> Vec<(String, QueryOptions)> {
    ["Christos Faloutsos", "Michalis Faloutsos", "Petros Faloutsos", "Faloutsos"]
        .into_iter()
        .flat_map(|kw| {
            [10usize, 30].into_iter().map(move |l| {
                (
                    kw.to_owned(),
                    QueryOptions {
                        l,
                        prelim: true,
                        source: OsSource::Database,
                        ..QueryOptions::default()
                    },
                )
            })
        })
        .collect()
}

/// Fresh-pk mutation source: each call yields one new author plus one
/// junction row linking it to an existing paper. Authors and junctions
/// advance in lockstep, so author `first_author + k` owns junction
/// `first_junction + k` — the invariant the churn stream's trailing
/// unlink-then-delete relies on.
struct MutationSource {
    next_author: AtomicI64,
    next_junction: AtomicI64,
    first_author: i64,
    first_junction: i64,
    paper_pk: i64,
}

impl MutationSource {
    fn new(engine: &SizeLEngine) -> Self {
        let db = engine.db();
        let first_author = max_pk(db, "Author") + 1;
        let first_junction = max_pk(db, "AuthorPaper") + 1;
        MutationSource {
            next_author: AtomicI64::new(first_author),
            next_junction: AtomicI64::new(first_junction),
            first_author,
            first_junction,
            paper_pk: max_pk(db, "Paper"),
        }
    }

    fn next(&self) -> [Mutation; 2] {
        let a = self.next_author.fetch_add(1, Ordering::Relaxed);
        let j = self.next_junction.fetch_add(1, Ordering::Relaxed);
        [
            Mutation::insert("Author", vec![Value::Int(a), format!("Churn Author{a}").into()]),
            Mutation::insert(
                "AuthorPaper",
                vec![Value::Int(j), Value::Int(a), Value::Int(self.paper_pk)],
            ),
        ]
    }

    /// The full-model churn batch (ISSUE 6): the insert pair, then —
    /// once the stream is deep enough — a rename of the author two
    /// batches back and the unlink-then-delete of the author four
    /// batches back (junction first: the RESTRICT-legal order).
    fn next_churn(&self) -> Vec<Mutation> {
        let a = self.next_author.fetch_add(1, Ordering::Relaxed);
        let j = self.next_junction.fetch_add(1, Ordering::Relaxed);
        let mut ms = vec![
            Mutation::insert("Author", vec![Value::Int(a), format!("Churn Author{a}").into()]),
            Mutation::insert(
                "AuthorPaper",
                vec![Value::Int(j), Value::Int(a), Value::Int(self.paper_pk)],
            ),
        ];
        let renamed = a - 2;
        if renamed >= self.first_author {
            ms.push(Mutation::update(
                "Author",
                renamed,
                vec![Value::Int(renamed), format!("Churn Author{renamed} Revised").into()],
            ));
        }
        let retired = a - 4;
        if retired >= self.first_author {
            let junction = self.first_junction + (retired - self.first_author);
            ms.push(Mutation::delete("AuthorPaper", junction));
            ms.push(Mutation::delete("Author", retired));
        }
        ms
    }
}

fn bench_update_throughput(c: &mut Criterion) {
    let full = std::env::var("SIZEL_BENCH_FULL").is_ok_and(|v| v == "1");
    let set = workload();

    let mut group = c.benchmark_group("update_throughput_dblp");
    group.sample_size(if full { 20 } else { 10 });
    group.measurement_time(std::time::Duration::from_secs(if full { 5 } else { 2 }));

    // Steady-state ceiling: queries only, cache disabled so every batch
    // exercises the probes.
    let engine = build_engine();
    let server = SizeLServer::from_shared(
        Arc::clone(&engine),
        ServeConfig {
            workers: 2,
            queue_capacity: set.len(),
            cache_capacity: 0,
            cache_shards: 4,
            ..ServeConfig::default()
        },
    );
    group.bench_with_input(BenchmarkId::new("query_only", 2), &set, |b, set| {
        b.iter(|| criterion::black_box(server.batch_query(set)));
    });
    drop(server);

    // Mixed stream, incremental maintenance: the fast path must survive
    // the churn (ratio printed below).
    let engine = build_engine();
    let server = SizeLServer::from_shared(
        Arc::clone(&engine),
        ServeConfig {
            workers: 2,
            queue_capacity: set.len(),
            cache_capacity: 0,
            cache_shards: 4,
            ..ServeConfig::default()
        },
    );
    let muts = MutationSource::new(&server.engine());
    engine.read().unwrap().db().access().reset();
    group.bench_with_input(BenchmarkId::new("mixed_incremental", 2), &set, |b, set| {
        b.iter(|| {
            for m in muts.next() {
                server.apply(m).expect("incremental apply");
            }
            criterion::black_box(server.batch_query(set));
        });
    });
    let probes = {
        let e = engine.read().unwrap();
        e.db().access().probes()
    };
    eprintln!(
        "update_throughput: incremental stream probe mix fast={} heap={} (fast ratio {:.3}; \
         PR 3's snapshot design pins this at 0.000 after the first insert)",
        probes.fast,
        probes.heap,
        probes.fast_ratio()
    );
    drop(server);

    // Mixed stream, exact escape hatch: full re-derivation per insert.
    let engine = build_engine();
    let server = SizeLServer::from_shared(
        Arc::clone(&engine),
        ServeConfig {
            workers: 2,
            queue_capacity: set.len(),
            cache_capacity: 0,
            cache_shards: 4,
            ..ServeConfig::default()
        },
    );
    let muts = MutationSource::new(&server.engine());
    group.bench_with_input(BenchmarkId::new("mixed_exact", 2), &set, |b, set| {
        b.iter(|| {
            for m in muts.next() {
                server.apply(m.exact()).expect("exact apply");
            }
            criterion::black_box(server.batch_query(set));
        });
    });
    drop(server);

    // Full-model churn, incremental: inserts + renames + deletes per
    // batch; tombstones accumulate and compact, and the probe mix must
    // stay fast regardless.
    let engine = build_engine();
    let server = SizeLServer::from_shared(
        Arc::clone(&engine),
        ServeConfig {
            workers: 2,
            queue_capacity: set.len(),
            cache_capacity: 0,
            cache_shards: 4,
            ..ServeConfig::default()
        },
    );
    let muts = MutationSource::new(&server.engine());
    engine.read().unwrap().db().access().reset();
    group.bench_with_input(BenchmarkId::new("churn_incremental", 5), &set, |b, set| {
        b.iter(|| {
            for m in muts.next_churn() {
                server.apply(m).expect("incremental churn apply");
            }
            criterion::black_box(server.batch_query(set));
        });
    });
    let probes = {
        let e = engine.read().unwrap();
        e.db().access().probes()
    };
    eprintln!(
        "update_throughput: churn stream probe mix fast={} heap={} (fast ratio {:.3} across \
         update/delete tombstones)",
        probes.fast,
        probes.heap,
        probes.fast_ratio()
    );
    drop(server);

    // Full-model churn, exact escape hatch: the re-derivation cost the
    // incremental delete/update path avoids (EXPERIMENTS.md §PR 6 pins
    // the ≥3× gap).
    let engine = build_engine();
    let server = SizeLServer::from_shared(
        Arc::clone(&engine),
        ServeConfig {
            workers: 2,
            queue_capacity: set.len(),
            cache_capacity: 0,
            cache_shards: 4,
            ..ServeConfig::default()
        },
    );
    let muts = MutationSource::new(&server.engine());
    group.bench_with_input(BenchmarkId::new("churn_exact", 5), &set, |b, set| {
        b.iter(|| {
            for m in muts.next_churn() {
                server.apply(m.exact()).expect("exact churn apply");
            }
            criterion::black_box(server.batch_query(set));
        });
    });
    group.finish();
}

criterion_group!(benches, bench_update_throughput);
criterion_main!(benches);
