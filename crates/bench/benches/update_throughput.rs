//! Update-workload throughput (ISSUE 4): a mixed insert/query stream
//! against the epoch-versioned server, with the prefix-scan retention
//! that motivates the incremental maintenance reported as a probe-mix
//! ratio.
//!
//! Three regimes over the same Database-source query workload (the one
//! that actually drives TOP-l probes):
//! * `query_only` — no mutations: the steady-state ceiling.
//! * `mixed_incremental` — one incremental insert per batch: sorted
//!   postings binary-maintained, token re-stamped, scores spliced. PR 3's
//!   snapshot design would heap-fall-back *permanently* after the first
//!   insert; here the fast-path ratio stays ~1 (printed after the run).
//! * `mixed_exact` — one exact-refresh insert per batch: the escape
//!   hatch's full re-derivation cost (power iteration + reinstall), as a
//!   reference for what the incremental path avoids.
//!
//! `SIZEL_BENCH_FULL=1` uses more samples; the default keeps `cargo
//! bench` fast.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, RwLock};

use sizel_core::engine::{EngineConfig, Mutation, QueryOptions, SizeLEngine};
use sizel_core::osgen::OsSource;
use sizel_core::test_fixtures::max_pk;
use sizel_datagen::dblp::{generate, DblpConfig};
use sizel_graph::presets;
use sizel_rank::{dblp_ga, GaPreset};
use sizel_serve::{ServeConfig, SizeLServer};
use sizel_storage::Value;

fn build_engine() -> Arc<RwLock<SizeLEngine>> {
    let d = generate(&DblpConfig::small());
    Arc::new(RwLock::new(
        SizeLEngine::build(
            d.db,
            |db, sg, dg| dblp_ga(GaPreset::Ga1, db, sg, dg),
            EngineConfig::new(vec![
                ("Author".into(), presets::dblp_author_gds_config()),
                ("Paper".into(), presets::dblp_paper_gds_config()),
            ]),
        )
        .expect("small DBLP engine builds"),
    ))
}

/// Database-source prelim queries: the workload whose TOP-l probes the
/// sorted postings serve (DataGraph-source queries never touch them).
fn workload() -> Vec<(String, QueryOptions)> {
    ["Christos Faloutsos", "Michalis Faloutsos", "Petros Faloutsos", "Faloutsos"]
        .into_iter()
        .flat_map(|kw| {
            [10usize, 30].into_iter().map(move |l| {
                (
                    kw.to_owned(),
                    QueryOptions {
                        l,
                        prelim: true,
                        source: OsSource::Database,
                        ..QueryOptions::default()
                    },
                )
            })
        })
        .collect()
}

/// Fresh-pk mutation source: each call yields one new author plus one
/// junction row linking it to an existing paper.
struct MutationSource {
    next_author: AtomicI64,
    next_junction: AtomicI64,
    paper_pk: i64,
}

impl MutationSource {
    fn new(engine: &SizeLEngine) -> Self {
        let db = engine.db();
        MutationSource {
            next_author: AtomicI64::new(max_pk(db, "Author") + 1),
            next_junction: AtomicI64::new(max_pk(db, "AuthorPaper") + 1),
            paper_pk: max_pk(db, "Paper"),
        }
    }

    fn next(&self) -> [Mutation; 2] {
        let a = self.next_author.fetch_add(1, Ordering::Relaxed);
        let j = self.next_junction.fetch_add(1, Ordering::Relaxed);
        [
            Mutation::insert("Author", vec![Value::Int(a), format!("Churn Author{a}").into()]),
            Mutation::insert(
                "AuthorPaper",
                vec![Value::Int(j), Value::Int(a), Value::Int(self.paper_pk)],
            ),
        ]
    }
}

fn bench_update_throughput(c: &mut Criterion) {
    let full = std::env::var("SIZEL_BENCH_FULL").is_ok_and(|v| v == "1");
    let set = workload();

    let mut group = c.benchmark_group("update_throughput_dblp");
    group.sample_size(if full { 20 } else { 10 });
    group.measurement_time(std::time::Duration::from_secs(if full { 5 } else { 2 }));

    // Steady-state ceiling: queries only, cache disabled so every batch
    // exercises the probes.
    let engine = build_engine();
    let server = SizeLServer::from_shared(
        Arc::clone(&engine),
        ServeConfig {
            workers: 2,
            queue_capacity: set.len(),
            cache_capacity: 0,
            cache_shards: 4,
            ..ServeConfig::default()
        },
    );
    group.bench_with_input(BenchmarkId::new("query_only", 2), &set, |b, set| {
        b.iter(|| criterion::black_box(server.batch_query(set)));
    });
    drop(server);

    // Mixed stream, incremental maintenance: the fast path must survive
    // the churn (ratio printed below).
    let engine = build_engine();
    let server = SizeLServer::from_shared(
        Arc::clone(&engine),
        ServeConfig {
            workers: 2,
            queue_capacity: set.len(),
            cache_capacity: 0,
            cache_shards: 4,
            ..ServeConfig::default()
        },
    );
    let muts = MutationSource::new(&server.engine());
    engine.read().unwrap().db().access().reset();
    group.bench_with_input(BenchmarkId::new("mixed_incremental", 2), &set, |b, set| {
        b.iter(|| {
            for m in muts.next() {
                server.apply(m).expect("incremental apply");
            }
            criterion::black_box(server.batch_query(set));
        });
    });
    let probes = {
        let e = engine.read().unwrap();
        e.db().access().probes()
    };
    eprintln!(
        "update_throughput: incremental stream probe mix fast={} heap={} (fast ratio {:.3}; \
         PR 3's snapshot design pins this at 0.000 after the first insert)",
        probes.fast,
        probes.heap,
        probes.fast_ratio()
    );
    drop(server);

    // Mixed stream, exact escape hatch: full re-derivation per insert.
    let engine = build_engine();
    let server = SizeLServer::from_shared(
        Arc::clone(&engine),
        ServeConfig {
            workers: 2,
            queue_capacity: set.len(),
            cache_capacity: 0,
            cache_shards: 4,
            ..ServeConfig::default()
        },
    );
    let muts = MutationSource::new(&server.engine());
    group.bench_with_input(BenchmarkId::new("mixed_exact", 2), &set, |b, set| {
        b.iter(|| {
            for m in muts.next() {
                server.apply(m.exact()).expect("exact apply");
            }
            criterion::black_box(server.batch_query(set));
        });
    });
    group.finish();
}

criterion_group!(benches, bench_update_throughput);
criterion_main!(benches);
