//! PR 10 disk-tier benches (EXPERIMENTS.md §PR 10):
//!
//! * `disk/prefix_scan` — the same TOP-l probe served from RAM sorted
//!   postings, from paged segments with a cache too small to keep the
//!   working set (every probe preads), and from paged segments with a
//!   warm cache (every probe hits) — the cost of paging cold tables and
//!   the cost of *not* sizing the cache.
//! * `disk/cache_curve` — one rotating probe mix across block-cache
//!   capacities, tracing the hit curve the residency policy trades on.
//! * `disk/wal_batch` — encode + append + fsync of a 16-mutation batch
//!   record at different fsync batching levels: the write-ahead overhead
//!   every `apply_batch` pays before settlement.

use std::hint::black_box;
use std::path::PathBuf;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sizel_core::durability::encode_batch;
use sizel_core::engine::Mutation;
use sizel_disk::{PagedStore, Wal};
use sizel_storage::{Database, RowId, TableSchema, Value};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sizel-bench-disk-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Parent/Child with `children` rows spread over 8 parents, importance
/// order installed — big enough that each parent's posting list spans
/// multiple 4 KiB pages.
fn scan_db(children: i64) -> Database {
    let mut db = Database::new();
    db.create_table(TableSchema::builder("Parent").pk("id").build().unwrap()).unwrap();
    db.create_table(
        TableSchema::builder("Child").pk("id").fk("parent_id", "Parent").build().unwrap(),
    )
    .unwrap();
    for pk in 0..8 {
        db.insert("Parent", vec![Value::Int(pk)]).unwrap();
    }
    for pk in 0..children {
        db.insert("Child", vec![Value::Int(pk), Value::Int(pk % 8)]).unwrap();
    }
    db.install_importance_order(&|_, r| 1.0 + r.index() as f64);
    db
}

/// A paged clone of `scan_db`: checkpointed, evicted, pager installed.
fn paged_db(children: i64, cache_pages: usize, tag: &str) -> (Database, Arc<PagedStore>, PathBuf) {
    let mut db = scan_db(children);
    let child = db.table_id("Child").unwrap();
    let dir = temp_dir(tag);
    let store = Arc::new(PagedStore::new(&dir, cache_pages).unwrap());
    store.checkpoint_from(&db, &[child]).unwrap();
    db.evict_table_postings(child);
    db.set_pager(Arc::<PagedStore>::clone(&store));
    (db, store, dir)
}

fn probe(db: &Database, key: i64, l: usize) -> usize {
    let child = db.table_id("Child").unwrap();
    let fk = db.table(child).schema.column_index("parent_id").unwrap();
    let token = db.fk_order();
    let li = |r: RowId| db.table(child).installed_score(r);
    db.select_eq_top_l(child, fk, key, l, 0.0, token, &li).len()
}

const CHILDREN: i64 = 40_000; // ~5 pages per parent's FK posting list

fn bench_prefix_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("disk/prefix_scan");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));

    let ram = scan_db(CHILDREN);
    group.bench_function("ram", |b| {
        let mut key = 0i64;
        b.iter(|| {
            key = (key + 1) % 8;
            black_box(probe(black_box(&ram), key, 10))
        })
    });

    // 2 cache pages for a >40-page working set: every page load preads.
    let (cold, store, dir) = paged_db(CHILDREN, 2, "scan-cold");
    group.bench_function("paged_cold", |b| {
        let mut key = 0i64;
        b.iter(|| {
            key = (key + 1) % 8;
            black_box(probe(black_box(&cold), key, 10))
        })
    });
    let s = store.stats();
    eprintln!(
        "paged_cold: hits={} misses={} evictions={} (cache starvation is the point)",
        s.cache.hits, s.cache.misses, s.cache.evictions
    );
    std::fs::remove_dir_all(&dir).ok();

    let (warm, store, dir) = paged_db(CHILDREN, 1024, "scan-warm");
    probe(&warm, 0, 10); // touch once so the working set is resident
    group.bench_function("paged_warm", |b| {
        let mut key = 0i64;
        b.iter(|| {
            key = (key + 1) % 8;
            black_box(probe(black_box(&warm), key, 10))
        })
    });
    let s = store.stats();
    eprintln!("paged_warm: hits={} misses={}", s.cache.hits, s.cache.misses);
    std::fs::remove_dir_all(&dir).ok();
    group.finish();
}

fn bench_cache_curve(c: &mut Criterion) {
    let mut group = c.benchmark_group("disk/cache_curve");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for cache_pages in [2usize, 8, 32, 128] {
        let (db, store, dir) = paged_db(CHILDREN, cache_pages, "curve");
        group.bench_with_input(BenchmarkId::from_parameter(cache_pages), &cache_pages, |b, _| {
            let mut key = 0i64;
            b.iter(|| {
                key = (key + 1) % 8;
                black_box(probe(black_box(&db), key, 10))
            })
        });
        let s = store.stats();
        let total = s.cache.hits + s.cache.misses;
        let ratio = if total == 0 { 0.0 } else { s.cache.hits as f64 / total as f64 };
        eprintln!("cache_pages={cache_pages}: hit ratio {ratio:.3} over {total} loads");
        std::fs::remove_dir_all(&dir).ok();
    }
    group.finish();
}

/// A representative 16-mutation batch record (~1 KiB encoded).
fn sample_record() -> Vec<u8> {
    let ms: Vec<Mutation> = (0..16)
        .map(|i| {
            Mutation::insert(
                "Child",
                vec![Value::Int(i), Value::Int(i % 8), Value::Text(format!("payload {i}"))],
            )
        })
        .collect();
    encode_batch(7, &ms)
}

fn bench_wal_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("disk/wal_batch");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));

    let record = sample_record();
    group.bench_function("encode_only", |b| {
        let ms: Vec<Mutation> = (0..16)
            .map(|i| Mutation::insert("Child", vec![Value::Int(i), Value::Int(i % 8)]))
            .collect();
        b.iter(|| black_box(encode_batch(black_box(7), black_box(&ms))))
    });
    for fsync_every in [1usize, 8, 64] {
        let dir = temp_dir("wal");
        let path = dir.join(format!("bench-{fsync_every}.wal"));
        let (mut wal, _) = Wal::open(&path, fsync_every).unwrap();
        group.bench_with_input(BenchmarkId::new("append", fsync_every), &fsync_every, |b, _| {
            b.iter(|| {
                // Bound file growth: start over at 64 MiB.
                if wal.len_bytes() > 64 << 20 {
                    wal.truncate().unwrap();
                }
                black_box(wal.append(black_box(&record)).unwrap())
            })
        });
        std::fs::remove_dir_all(&dir).ok();
    }
    group.finish();
}

criterion_group!(benches, bench_prefix_scan, bench_cache_curve, bench_wal_batch);
criterion_main!(benches);
