//! Network front-end throughput (ISSUE 7): the wire path vs the
//! in-process router on the same workload, pipelining depth, and the
//! framing codec alone.
//!
//! Groups:
//! * `net_roundtrip` — `in_process` calls `ClusterRouter::batch_query_at`
//!   directly; `loopback_<backend>/D` pushes the same batch through a
//!   real TCP loopback with D requests pipelined per iteration, once
//!   per reactor backend (`poll` and, on Linux, `epoll`). The
//!   poll-vs-epoll spread at depth 1 is exactly the idle-sleep latency
//!   floor the readiness reactor deletes (ISSUE 8). NOTE: on the 1-CPU
//!   reference container the I/O thread, dispatch workers, and the
//!   bench thread share one core — loopback numbers are upper bounds
//!   on protocol overhead.
//! * `net_codec` — encode/decode of a realistic `Results` payload, no
//!   sockets: the codec's own cost.
//!
//! `SIZEL_BENCH_FULL=1` uses more samples; the default keeps `cargo
//! bench` fast.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;

use sizel_cluster::{ClusterConfig, ClusterRouter};
use sizel_core::engine::{EngineConfig, QueryOptions, SizeLEngine};
use sizel_datagen::dblp::{generate, DblpConfig};
use sizel_graph::presets;
use sizel_net::frame::Opcode;
use sizel_net::wire::{decode_reply, encode_query_payload, encode_results_payload};
use sizel_net::{NetClient, NetConfig, NetServer, ReactorChoice};
use sizel_rank::{dblp_ga, GaPreset};
use sizel_serve::ServeConfig;

fn build_engine() -> SizeLEngine {
    let d = generate(&DblpConfig::small());
    SizeLEngine::build(
        d.db,
        |db, sg, dg| dblp_ga(GaPreset::Ga1, db, sg, dg),
        EngineConfig::new(vec![
            ("Author".into(), presets::dblp_author_gds_config()),
            ("Paper".into(), presets::dblp_paper_gds_config()),
        ]),
    )
    .expect("small DBLP engine builds")
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue_capacity: 64,
        cache_capacity: 4096,
        cache_shards: 16,
        hot_capacity: 64,
    }
}

/// The fig10 famous-author workload (small-DBLP subset).
fn workload() -> Vec<(String, QueryOptions)> {
    ["Christos Faloutsos", "Michalis Faloutsos", "Petros Faloutsos", "Faloutsos"]
        .into_iter()
        .flat_map(|kw| {
            [10usize, 30]
                .into_iter()
                .map(move |l| (kw.to_owned(), QueryOptions { l, ..QueryOptions::default() }))
        })
        .collect()
}

fn bench_net_throughput(c: &mut Criterion) {
    let full = std::env::var("SIZEL_BENCH_FULL").is_ok_and(|v| v == "1");
    let set = workload();

    let router = Arc::new(
        ClusterRouter::partitioned(
            vec![build_engine(), build_engine()],
            ClusterConfig { serve: serve_config(), refresh: None },
        )
        .expect("cluster builds"),
    );

    let mut group = c.benchmark_group("net_roundtrip");
    group.sample_size(if full { 20 } else { 10 });
    group.measurement_time(Duration::from_secs(if full { 5 } else { 2 }));

    // Baseline: the same calls with no wire in between.
    group.bench_with_input(BenchmarkId::new("in_process", 0), &set, |b, set| {
        b.iter(|| criterion::black_box(router.batch_query_at(set).expect("query")));
    });

    // The wire path at pipeline depths 1 and 8, once per reactor
    // backend: one iteration sends D copies of the batch before reading
    // any reply. Depth 1 is where the poll loop's idle-sleep floor
    // dominates and the epoll reactor's doorbell wakeups pay off.
    let payload = encode_query_payload(&set);
    let backends: &[ReactorChoice] = if cfg!(target_os = "linux") {
        &[ReactorChoice::Poll, ReactorChoice::Epoll]
    } else {
        &[ReactorChoice::Poll]
    };
    for &reactor in backends {
        let cfg = NetConfig { reactor, ..Default::default() };
        let server =
            NetServer::bind(Arc::clone(&router), "127.0.0.1:0", cfg).expect("bind loopback");
        let name = format!("loopback_{}", server.reactor_kind().name());
        let mut client = NetClient::connect(server.local_addr()).expect("connect");
        client.set_read_timeout(Some(Duration::from_secs(60))).expect("timeout");
        for depth in [1usize, 8] {
            group.bench_with_input(BenchmarkId::new(&name, depth), &payload, |b, payload| {
                b.iter(|| {
                    let ids: Vec<u64> = (0..depth)
                        .map(|_| client.send(Opcode::Query, payload).expect("send"))
                        .collect();
                    for id in ids {
                        let (op, reply) = client.recv_for(id).expect("reply");
                        assert_eq!(op, Opcode::Results);
                        criterion::black_box(reply);
                    }
                });
            });
        }
    }
    group.finish();

    // Per-request latency percentiles (PR 9): criterion reports means;
    // tail behavior is where the fast path and the doorbell show up.
    // Each timed iteration pipelines D requests and attributes
    // duration/D to every request; p50/p99 come from the sorted
    // per-request samples. Printed to stderr next to the criterion
    // output (there is no hidden cap: every iteration is a sample).
    let rounds = if full { 400 } else { 150 };
    for &reactor in backends {
        let cfg = NetConfig { reactor, ..Default::default() };
        let server =
            NetServer::bind(Arc::clone(&router), "127.0.0.1:0", cfg).expect("bind loopback");
        let name = server.reactor_kind().name();
        let mut client = NetClient::connect(server.local_addr()).expect("connect");
        client.set_read_timeout(Some(Duration::from_secs(60))).expect("timeout");
        for depth in [1usize, 8] {
            let mut samples_us: Vec<f64> = Vec::with_capacity(rounds);
            for round in 0..rounds + 20 {
                let start = std::time::Instant::now();
                let ids: Vec<u64> = (0..depth)
                    .map(|_| client.send(Opcode::Query, &payload).expect("send"))
                    .collect();
                for id in ids {
                    let (op, reply) = client.recv_for(id).expect("reply");
                    assert_eq!(op, Opcode::Results);
                    criterion::black_box(reply);
                }
                // The first 20 rounds warm caches and buffers.
                if round >= 20 {
                    samples_us.push(start.elapsed().as_secs_f64() * 1e6 / depth as f64);
                }
            }
            samples_us.sort_by(|a, b| a.total_cmp(b));
            let pct = |p: f64| samples_us[((samples_us.len() - 1) as f64 * p) as usize];
            eprintln!(
                "net_latency/{name}/depth{depth}: p50={:.1}us p99={:.1}us (n={})",
                pct(0.50),
                pct(0.99),
                samples_us.len()
            );
        }
        let hits = server.counters().fastpath_hits.load(std::sync::atomic::Ordering::Relaxed);
        eprintln!("net_latency/{name}: fastpath hits {hits}");
    }

    // The codec alone: a realistic Results payload, no sockets.
    let (epoch, results) = router.batch_query_at(&set).expect("oracle");
    let encoded = encode_results_payload(epoch, &results);
    let mut group = c.benchmark_group("net_codec");
    group.sample_size(if full { 60 } else { 20 });
    group.measurement_time(Duration::from_secs(if full { 5 } else { 2 }));
    group.bench_function("encode_results", |b| {
        b.iter(|| criterion::black_box(encode_results_payload(epoch, &results)));
    });
    group.bench_function("decode_results", |b| {
        b.iter(|| criterion::black_box(decode_reply(Opcode::Results, &encoded).expect("decodes")));
    });
    group.finish();
}

criterion_group!(benches, bench_net_throughput);
criterion_main!(benches);
