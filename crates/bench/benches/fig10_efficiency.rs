//! Criterion bench behind Figure 10(a-d): size-l computation time per
//! method × input (complete vs prelim-l OS), per GDS case.
//!
//! Set `SIZEL_BENCH_FULL=1` to run at the calibrated benchmark scale; the
//! default quick scale keeps `cargo bench` under a minute per group.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use sizel_bench::{Bench, GdsKind};
use sizel_core::algo::{BottomUp, SizeLAlgorithm, TopPath};
use sizel_core::osgen::{generate_os, OsSource};
use sizel_core::prelim::generate_prelim;

fn full_scale() -> bool {
    std::env::var("SIZEL_BENCH_FULL").is_ok_and(|v| v == "1")
}

fn bench_fig10(c: &mut Criterion) {
    let bench = Bench::new(!full_scale());
    for kind in GdsKind::ALL {
        let mut group = c.benchmark_group(format!("fig10/{}", kind.label().replace(' ', "_")));
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_millis(500));
        group.measurement_time(std::time::Duration::from_secs(1));
        let ctx = bench.ctx(kind, 0);
        let tds = bench.samples(kind, 1)[0];
        for l in [10usize, 30] {
            let complete = generate_os(&ctx, tds, Some(l as u32 - 1), OsSource::DataGraph);
            let (prelim, _) = generate_prelim(&ctx, tds, l, OsSource::DataGraph);
            let cases: [(&str, &dyn SizeLAlgorithm, &sizel_core::os::Os); 4] = [
                ("bottom_up/complete", &BottomUp, &complete),
                ("bottom_up/prelim", &BottomUp, &prelim),
                ("top_path/complete", &TopPath, &complete),
                ("top_path/prelim", &TopPath, &prelim),
            ];
            for (name, algo, input) in cases {
                group.bench_with_input(BenchmarkId::new(name, l), &l, |b, &l| {
                    b.iter(|| black_box(algo.compute(black_box(input), l)));
                });
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
