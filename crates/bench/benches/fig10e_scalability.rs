//! Criterion bench behind Figure 10(e): size-10 computation time against
//! |OS|, over the famous-author ladder.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use sizel_bench::{Bench, GdsKind};
use sizel_core::algo::{BottomUp, DpKnapsack, SizeLAlgorithm, TopPath};
use sizel_core::osgen::{generate_os, OsSource};

fn full_scale() -> bool {
    std::env::var("SIZEL_BENCH_FULL").is_ok_and(|v| v == "1")
}

fn bench_scalability(c: &mut Criterion) {
    let bench = Bench::new(!full_scale());
    let ctx = bench.ctx(GdsKind::Author, 0);
    let l = 10usize;
    let mut group = c.benchmark_group("fig10e/size10_vs_os_size");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(1));
    for (name, tds) in bench.ladder() {
        let complete = generate_os(&ctx, tds, Some(l as u32 - 1), OsSource::DataGraph);
        let size = generate_os(&ctx, tds, None, OsSource::DataGraph).len();
        let algos: [(&str, &dyn SizeLAlgorithm); 3] =
            [("bottom_up", &BottomUp), ("top_path", &TopPath), ("optimal_dp", &DpKnapsack)];
        for (algo_name, algo) in algos {
            group.bench_with_input(
                BenchmarkId::new(algo_name, format!("{name}_{size}t")),
                &complete,
                |b, os| b.iter(|| black_box(algo.compute(black_box(os), l))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
