//! Criterion bench behind Figure 10(f): the OS-generation side of the cost
//! breakdown — complete vs prelim-l, data-graph vs database, on the
//! Supplier GDS.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use sizel_bench::{Bench, GdsKind};
use sizel_core::osgen::{generate_os, OsSource};
use sizel_core::prelim::generate_prelim;

fn full_scale() -> bool {
    std::env::var("SIZEL_BENCH_FULL").is_ok_and(|v| v == "1")
}

fn bench_breakdown(c: &mut Criterion) {
    let bench = Bench::new(!full_scale());
    let ctx = bench.ctx(GdsKind::Supplier, 0);
    let tds = bench.samples(GdsKind::Supplier, 1)[0];
    let mut group = c.benchmark_group("fig10f/os_generation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(1));
    for l in [10usize, 50] {
        group.bench_with_input(BenchmarkId::new("complete/data_graph", l), &l, |b, &l| {
            b.iter(|| black_box(generate_os(&ctx, tds, Some(l as u32 - 1), OsSource::DataGraph)))
        });
        group.bench_with_input(BenchmarkId::new("complete/database", l), &l, |b, &l| {
            b.iter(|| black_box(generate_os(&ctx, tds, Some(l as u32 - 1), OsSource::Database)))
        });
        group.bench_with_input(BenchmarkId::new("prelim/data_graph", l), &l, |b, &l| {
            b.iter(|| black_box(generate_prelim(&ctx, tds, l, OsSource::DataGraph)))
        });
        group.bench_with_input(BenchmarkId::new("prelim/database", l), &l, |b, &l| {
            b.iter(|| black_box(generate_prelim(&ctx, tds, l, OsSource::Database)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_breakdown);
criterion_main!(benches);
