//! Cluster-serving throughput (ISSUE 5): the sharded router vs a single
//! server on the fig10 DBLP workload, the batched vs folded mutation
//! apply, and the hot-key-after-write latency with the continual-refresh
//! worker on and off.
//!
//! Groups:
//! * `cluster_throughput_dblp` — `single_server` is the PR-2 serving
//!   baseline; `cluster/N` routes the same batch through an N-shard
//!   partitioned router (per-DS fan-out + merge). NOTE: on the 1-CPU
//!   reference container cross-shard parallelism cannot show up — the
//!   interesting single-core signal is the router overhead.
//! * `apply_amortization` — `folded/B` applies B mutations one
//!   `SizeLEngine::apply` at a time (B DataGraph rebuilds);
//!   `batched/B` applies them as one `apply_batch` (one rebuild).
//! * Hot-key-after-write latency is measured with a manual timer (the
//!   refresh completes asynchronously, so it cannot sit inside a
//!   criterion closure) and printed after the run; EXPERIMENTS.md §PR 5
//!   records the reference numbers.
//!
//! `SIZEL_BENCH_FULL=1` uses more samples; the default keeps `cargo
//! bench` fast.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::{Duration, Instant};

use sizel_cluster::{ClusterConfig, ClusterRouter, RefreshConfig};
use sizel_core::engine::{EngineConfig, Mutation, QueryOptions, SizeLEngine};
use sizel_core::test_fixtures::max_pk;
use sizel_datagen::dblp::{generate, DblpConfig};
use sizel_graph::presets;
use sizel_rank::{dblp_ga, GaPreset};
use sizel_serve::{ServeConfig, SizeLServer};
use sizel_storage::Value;

fn build_engine() -> SizeLEngine {
    let d = generate(&DblpConfig::small());
    SizeLEngine::build(
        d.db,
        |db, sg, dg| dblp_ga(GaPreset::Ga1, db, sg, dg),
        EngineConfig::new(vec![
            ("Author".into(), presets::dblp_author_gds_config()),
            ("Paper".into(), presets::dblp_paper_gds_config()),
        ]),
    )
    .expect("small DBLP engine builds")
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue_capacity: 64,
        cache_capacity: 4096,
        cache_shards: 16,
        hot_capacity: 64,
    }
}

/// The fig10 famous-author workload (small-DBLP subset).
fn workload() -> Vec<(String, QueryOptions)> {
    ["Christos Faloutsos", "Michalis Faloutsos", "Petros Faloutsos", "Faloutsos"]
        .into_iter()
        .flat_map(|kw| {
            [10usize, 30].into_iter().flat_map(move |l| {
                [true, false].into_iter().map(move |prelim| {
                    (kw.to_owned(), QueryOptions { l, prelim, ..QueryOptions::default() })
                })
            })
        })
        .collect()
}

/// Fresh-pk author + junction-row mutation batches.
struct MutationSource {
    next_author: i64,
    next_junction: i64,
    paper_pk: i64,
}

impl MutationSource {
    fn new(engine: &SizeLEngine) -> Self {
        let db = engine.db();
        MutationSource {
            next_author: max_pk(db, "Author") + 1,
            next_junction: max_pk(db, "AuthorPaper") + 1,
            paper_pk: max_pk(db, "Paper"),
        }
    }

    fn batch(&mut self, size: usize) -> Vec<Mutation> {
        let mut ms = Vec::with_capacity(size * 2);
        for _ in 0..size {
            let a = self.next_author;
            self.next_author += 1;
            let j = self.next_junction;
            self.next_junction += 1;
            ms.push(Mutation::insert("Author", vec![Value::Int(a), format!("Churn A{a}").into()]));
            ms.push(Mutation::insert(
                "AuthorPaper",
                vec![Value::Int(j), Value::Int(a), Value::Int(self.paper_pk)],
            ));
        }
        ms
    }
}

fn bench_cluster_throughput(c: &mut Criterion) {
    let full = std::env::var("SIZEL_BENCH_FULL").is_ok_and(|v| v == "1");
    let set = workload();

    let mut group = c.benchmark_group("cluster_throughput_dblp");
    group.sample_size(if full { 20 } else { 10 });
    group.measurement_time(Duration::from_secs(if full { 5 } else { 2 }));

    // Baseline: one server, whole-query jobs.
    let server = SizeLServer::new(build_engine(), serve_config());
    group.bench_with_input(BenchmarkId::new("single_server", 1), &set, |b, set| {
        b.iter(|| criterion::black_box(server.batch_query(set)));
    });
    drop(server);

    // The partitioned router at 1/2/4 shards (refresh off: measuring the
    // serving path, not the background worker).
    for shards in [1usize, 2, 4] {
        let engines: Vec<SizeLEngine> = (0..shards).map(|_| build_engine()).collect();
        let cluster = ClusterRouter::partitioned(
            engines,
            ClusterConfig { serve: serve_config(), refresh: None },
        )
        .expect("cluster builds");
        group.bench_with_input(BenchmarkId::new("cluster", shards), &set, |b, set| {
            b.iter(|| criterion::black_box(cluster.batch_query(set).expect("partitioned query")));
        });
    }
    group.finish();

    // Batched vs folded apply: the per-insert derived-state refresh
    // amortization (one DataGraph rebuild per batch vs one per insert).
    let mut group = c.benchmark_group("apply_amortization");
    group.sample_size(if full { 20 } else { 10 });
    group.measurement_time(Duration::from_secs(if full { 5 } else { 2 }));
    let batch_size = 8usize; // 8 authors + 8 junction rows per batch

    let mut engine = build_engine();
    let mut muts = MutationSource::new(&engine);
    group.bench_function(format!("folded/{batch_size}"), |b| {
        b.iter(|| {
            for m in muts.batch(batch_size) {
                engine.apply(m).expect("folded apply");
            }
        });
    });
    let mut engine = build_engine();
    let mut muts = MutationSource::new(&engine);
    group.bench_function(format!("batched/{batch_size}"), |b| {
        b.iter(|| {
            engine.apply_batch(muts.batch(batch_size)).expect("batched apply");
        });
    });
    group.finish();

    // Hot-key latency after a write, refresh worker off vs on. Manual
    // timing: the refresh completes asynchronously, so the "on" case
    // waits for the worker before timing the (now warm) read. The hot
    // key is deliberately an *expensive* summary (complete OS of the
    // biggest famous author, l = 50) — the regime the refresh exists
    // for; cheap prelim summaries recompute in ~10 µs, below the 1-CPU
    // box's scheduling noise.
    let hot_kw = "Christos Faloutsos";
    let hot_opts = QueryOptions { l: 50, prelim: false, ..QueryOptions::default() };
    let rounds = if full { 40 } else { 15 };
    let mut report = Vec::new();
    for refresh_on in [false, true] {
        let cluster = ClusterRouter::partitioned(
            vec![build_engine()],
            ClusterConfig {
                serve: serve_config(),
                refresh: refresh_on
                    .then(|| RefreshConfig { budget: 16, interval: Duration::from_millis(5) }),
            },
        )
        .expect("cluster builds");
        let mut muts = MutationSource::new(&cluster.shard(0).engine());
        for _ in 0..4 {
            let _ = cluster.query(hot_kw, hot_opts).unwrap(); // heat the key
        }
        let mut total = Duration::ZERO;
        for _ in 0..rounds {
            cluster.apply_batch(muts.batch(1)).expect("write");
            if refresh_on {
                // Wait for the worker to finish this epoch's re-warm.
                let before = cluster.stats().refresh.rewarmed_keys;
                let deadline = Instant::now() + Duration::from_secs(5);
                while cluster.stats().refresh.rewarmed_keys == before && Instant::now() < deadline {
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
            let t0 = Instant::now();
            criterion::black_box(cluster.query(hot_kw, hot_opts).unwrap());
            total += t0.elapsed();
        }
        report.push((refresh_on, total / rounds as u32));
    }
    for (on, avg) in report {
        eprintln!(
            "cluster_throughput: hot-key query latency after write, refresh {}: {:?}/query",
            if on { "ON (post-rewarm)" } else { "OFF (cold recompute)" },
            avg
        );
    }
}

criterion_group!(benches, bench_cluster_throughput);
criterion_main!(benches);
