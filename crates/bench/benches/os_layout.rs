//! Data-layout bench: the cost of materializing Object Summaries.
//!
//! Measures the two ROADMAP hot paths the CSR-arena PR targets:
//!
//! * `generate_os` on the famous-author ladder (Figure 10e's 1000+-tuple
//!   OSs) — dominated by per-node allocation before the flat CSR arena,
//! * Database-source prelim-l generation — dominated by the
//!   `select_eq_top_l` Avoidance-Condition-2 probes, which the
//!   importance-sorted FK index turns into bounded prefix scans.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use sizel_bench::{Bench, GdsKind};
use sizel_core::os::OsArenaPool;
use sizel_core::osgen::{generate_os, generate_os_pooled, OsSource};
use sizel_core::prelim::generate_prelim;

fn full_scale() -> bool {
    std::env::var("SIZEL_BENCH_FULL").is_ok_and(|v| v == "1")
}

fn bench_generate(c: &mut Criterion) {
    let bench = Bench::new(!full_scale());
    let ctx = bench.ctx(GdsKind::Author, 0);
    let mut group = c.benchmark_group("os_layout/generate_os");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(1));
    for (name, tds) in bench.ladder() {
        let size = generate_os(&ctx, tds, None, OsSource::DataGraph).len();
        group.bench_with_input(
            BenchmarkId::new("data_graph", format!("{name}_{size}t")),
            &tds,
            |b, &tds| b.iter(|| black_box(generate_os(&ctx, tds, None, OsSource::DataGraph))),
        );
        // The steady-state serving path: arena + scratch recycled, zero
        // allocations per generation (tests/alloc_guard.rs).
        let mut pool = OsArenaPool::new();
        group.bench_with_input(
            BenchmarkId::new("data_graph_pooled", format!("{name}_{size}t")),
            &tds,
            |b, &tds| {
                b.iter(|| {
                    let os = generate_os_pooled(&ctx, tds, None, OsSource::DataGraph, &mut pool);
                    let n = black_box(os.len());
                    pool.release(os);
                    n
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("database", format!("{name}_{size}t")),
            &tds,
            |b, &tds| b.iter(|| black_box(generate_os(&ctx, tds, None, OsSource::Database))),
        );
    }
    group.finish();
}

fn bench_top_l_probes(c: &mut Criterion) {
    let bench = Bench::new(!full_scale());
    let mut group = c.benchmark_group("os_layout/prelim_database");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(1));
    for kind in [GdsKind::Author, GdsKind::Supplier] {
        let ctx = bench.ctx(kind, 0);
        let tds = bench.samples(kind, 1)[0];
        for l in [15usize, 50] {
            group.bench_with_input(
                BenchmarkId::new(kind.label().replace(' ', "_"), l),
                &l,
                |b, &l| b.iter(|| black_box(generate_prelim(&ctx, tds, l, OsSource::Database))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_generate, bench_top_l_probes);
criterion_main!(benches);
