//! Behavior the readiness rewrite added and must keep: the outbox byte
//! cap (the slow-reader admission gate) and idle-connection reaping —
//! each proven on every reactor backend via `for_each_reactor`.

use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use sizel_net::frame::Opcode;
use sizel_net::wire::decode_reply;
use sizel_net::{BusyReason, NetClient, NetConfig, Reply};

mod common;
use common::{for_each_reactor, serve, tiny_cluster};

/// A peer that fires `Stats` requests without ever reading the replies:
/// once the kernel socket buffers are full, reply bytes pile up in the
/// connection's outbox until the byte cap trips and further requests
/// shed with `Busy(OutboxFull)`. Every request still gets exactly one
/// reply (the Busy frames are small and always fit eventually), the
/// accounting identity holds, and the connection keeps serving once the
/// peer finally drains.
#[test]
fn a_never_reading_peer_trips_the_outbox_cap_not_the_server() {
    for_each_reactor(|reactor| {
        let router = tiny_cluster();
        // A tiny outbox cap so the gate trips ahead of any timing
        // accident; budget and queue large enough that the other two
        // gates stay out of the way.
        let server = serve(
            router,
            NetConfig {
                dispatch_workers: 2,
                queue_capacity: 256,
                inflight_budget: 256,
                outbox_cap_bytes: 8 * 1024,
                reactor,
                ..Default::default()
            },
        );
        let mut client = NetClient::connect(server.local_addr()).expect("connect");
        client.set_read_timeout(Some(Duration::from_secs(60))).expect("timeout");
        let counters = server.counters();

        // Ramp without reading until the cap trips: the first frames
        // land in kernel buffers, so the shed point depends on socket
        // buffer sizing — the loop is the portable way to reach it.
        let mut sent = 0usize;
        let deadline = Instant::now() + Duration::from_secs(30);
        while counters.shed_outbox.load(Ordering::Relaxed) == 0 {
            assert!(Instant::now() < deadline, "outbox cap never tripped after {sent} stats");
            assert!(sent < 4096, "outbox cap never tripped after {sent} stats");
            for _ in 0..16 {
                client.send(Opcode::Stats, &[]).expect("send stats");
                sent += 1;
            }
            std::thread::sleep(Duration::from_millis(20));
        }

        // Drain: exactly one reply per request, a mix of StatsText and
        // Busy(OutboxFull), nothing lost, nothing duplicated.
        let mut stats = 0usize;
        let mut busy = 0usize;
        for _ in 0..sent {
            let (_, op, payload) = client.recv_any().expect("every request gets a reply");
            match decode_reply(op, &payload).expect("decodes") {
                Reply::StatsText { .. } => stats += 1,
                Reply::Busy { reason } => {
                    assert_eq!(reason, BusyReason::OutboxFull);
                    busy += 1;
                }
                other => panic!("unexpected reply {other:?}"),
            }
        }
        assert_eq!(stats + busy, sent);
        assert!(busy >= 1, "the cap tripped, so Busy frames must be on the wire");
        assert!(stats >= 1, "replies admitted before the cap must still arrive");
        assert_eq!(counters.shed_outbox.load(Ordering::Relaxed) as usize, busy);
        assert_eq!(counters.frames_in.load(Ordering::Relaxed) as usize, sent);
        assert_eq!(counters.frames_out.load(Ordering::Relaxed) as usize, sent);

        // The shed never poisoned the connection: now that the peer
        // reads again, it serves normally.
        client.ping().expect("connection serves after draining");
    });
}

/// An idle connection is reaped once `idle_timeout` passes with no
/// complete frame; the reaper counts it and the peer observes a close.
#[test]
fn an_idle_connection_is_reaped_after_the_window() {
    for_each_reactor(|reactor| {
        let router = tiny_cluster();
        let server = serve(
            router,
            NetConfig {
                idle_timeout: Some(Duration::from_millis(150)),
                reactor,
                ..Default::default()
            },
        );
        let mut client = NetClient::connect(server.local_addr()).expect("connect");
        client.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
        client.ping().expect("first ping");

        // Go silent past the window (plus sweep-tick slack).
        let counters = server.counters();
        let deadline = Instant::now() + Duration::from_secs(10);
        while counters.idle_reaped.load(Ordering::Relaxed) == 0 {
            assert!(Instant::now() < deadline, "idle connection never reaped");
            std::thread::sleep(Duration::from_millis(25));
        }
        // The peer sees the close: the next receive is an EOF error,
        // never a frame.
        assert!(client.recv_any().is_err(), "reaped connection must read as closed");

        // The listener is unaffected — fresh connections serve.
        let mut fresh = NetClient::connect(server.local_addr()).expect("connect");
        fresh.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
        fresh.ping().expect("fresh connection after a reap");
    });
}

/// The regression the reaper must never cause: a connection that keeps
/// pipelining (or is merely waiting on its own in-flight replies) is
/// NOT idle. Activity windows slide on every complete frame, so pinging
/// at half the window across several windows' worth of wall clock must
/// survive.
#[test]
fn a_pipelining_connection_is_never_reaped() {
    for_each_reactor(|reactor| {
        let router = tiny_cluster();
        let window = Duration::from_millis(200);
        let server =
            serve(router, NetConfig { idle_timeout: Some(window), reactor, ..Default::default() });
        let mut client = NetClient::connect(server.local_addr()).expect("connect");
        client.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");

        // 12 pings at 100ms spacing: 1.2s of wall clock, six windows
        // deep — any reap of an active connection fails the ping.
        for i in 0..12 {
            client.ping().unwrap_or_else(|e| panic!("ping {i} on an active connection: {e:?}"));
            std::thread::sleep(window / 2);
        }
        assert_eq!(
            server.counters().idle_reaped.load(Ordering::Relaxed),
            0,
            "an active connection was reaped"
        );
    });
}
