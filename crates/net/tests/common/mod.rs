//! Shared fixture for the net integration tests: a small partitioned
//! DBLP cluster behind a loopback [`NetServer`] (the same engines the
//! cluster suites build).

#![allow(dead_code, unused_imports)] // each test binary uses the subset it needs

use std::sync::Arc;

use sizel_cluster::{ClusterConfig, ClusterRouter, RefreshConfig};
use sizel_core::engine::{EngineConfig, SizeLEngine};
use sizel_datagen::dblp::{generate, DblpConfig};
use sizel_graph::presets;
use sizel_net::{NetConfig, NetServer, ReactorChoice};
use sizel_rank::{dblp_ga, GaPreset};
use sizel_serve::ServeConfig;

/// A fresh engine over `cfg`.
pub fn build_engine(cfg: &DblpConfig) -> SizeLEngine {
    SizeLEngine::build(
        generate(cfg).db,
        |db, sg, dg| dblp_ga(GaPreset::Ga1, db, sg, dg),
        engine_config(),
    )
    .expect("engine builds")
}

/// N identically-built replica engines.
pub fn replicas(cfg: &DblpConfig, n: usize) -> Vec<SizeLEngine> {
    (0..n).map(|_| build_engine(cfg)).collect()
}

/// The engine configuration every fixture shares.
pub fn engine_config() -> EngineConfig {
    EngineConfig::new(vec![
        ("Author".into(), presets::dblp_author_gds_config()),
        ("Paper".into(), presets::dblp_paper_gds_config()),
    ])
}

/// A keyword resolving to pre-existing DS tuples of the fixture.
pub fn existing_keyword(engine: &SizeLEngine) -> String {
    let tid = engine.db().table_id("Author").unwrap();
    let name =
        engine.db().table(tid).value(sizel_storage::RowId(0), 1).as_str().unwrap().to_owned();
    name.split(' ').next().unwrap().to_owned()
}

/// Small per-shard serving configuration.
pub fn small_serve() -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 128,
        cache_shards: 4,
        hot_capacity: 16,
    }
}

/// A 2-shard partitioned cluster over the tiny DBLP fixture, refresh
/// worker ON (fast interval, so epochs see live re-warm traffic during
/// the suites).
pub fn tiny_cluster() -> Arc<ClusterRouter> {
    let cfg = DblpConfig::tiny();
    Arc::new(
        ClusterRouter::partitioned(
            replicas(&cfg, 2),
            ClusterConfig {
                serve: small_serve(),
                refresh: Some(RefreshConfig {
                    budget: 8,
                    interval: std::time::Duration::from_millis(5),
                }),
            },
        )
        .expect("cluster builds"),
    )
}

/// Binds a loopback server over `router` with `cfg`.
pub fn serve(router: Arc<ClusterRouter>, cfg: NetConfig) -> NetServer {
    NetServer::bind(router, "127.0.0.1:0", cfg).expect("bind loopback")
}

/// The reactor backends this test run exercises: both on Linux, the
/// portable poll loop alone elsewhere. When `SIZEL_NET_REACTOR` is set
/// (the CI matrix), only that backend runs — each matrix job proves one
/// backend in isolation instead of re-proving both twice.
pub fn reactor_choices() -> Vec<ReactorChoice> {
    let all = if cfg!(target_os = "linux") {
        vec![ReactorChoice::Poll, ReactorChoice::Epoll]
    } else {
        vec![ReactorChoice::Poll]
    };
    match std::env::var("SIZEL_NET_REACTOR") {
        Ok(v) => {
            let want = match v.as_str() {
                "poll" => ReactorChoice::Poll,
                "epoll" => ReactorChoice::Epoll,
                other => panic!("unknown SIZEL_NET_REACTOR backend `{other}`"),
            };
            let picked: Vec<_> = all.into_iter().filter(|c| *c == want).collect();
            assert!(!picked.is_empty(), "SIZEL_NET_REACTOR={v} unavailable on this platform");
            picked
        }
        Err(_) => all,
    }
}

/// Runs `body` once per reactor backend under test — the differential
/// harness: every suite that goes through this helper proves the epoll
/// reactor and the poll oracle behaviorally identical.
pub fn for_each_reactor(body: impl Fn(ReactorChoice)) {
    for choice in reactor_choices() {
        eprintln!("--- reactor backend: {choice:?} ---");
        body(choice);
    }
}
