//! Loopback end-to-end: a real [`NetServer`] over TCP, driven by the
//! pipelining [`NetClient`], proven **byte-identical** to in-process
//! [`ClusterRouter`] calls at every epoch — with the continual-refresh
//! worker running the whole time, and every scenario repeated on every
//! reactor backend (`for_each_reactor`), so the epoll reactor and the
//! portable poll oracle are held to the same observable behavior.
//!
//! The identity check works because the wire codec is deterministic:
//! the server's `Results` payload is `encode_results_payload(epoch,
//! results)` of its router call, and the test encodes its own in-process
//! call with the same function. Equal bytes ⟹ equal epoch stamp, equal
//! result order, equal scores, labels, selections, and summary trees —
//! there is nothing left for a lossy comparison to miss.

use std::sync::atomic::Ordering;
use std::time::Duration;

use sizel_core::engine::{Mutation, QueryOptions, ResultRanking};
use sizel_core::test_fixtures::max_pk;
use sizel_net::frame::Opcode;
use sizel_net::wire::{encode_query_payload, encode_results_payload};
use sizel_net::{NetClient, NetConfig, Reply};
use sizel_storage::Value;

mod common;
use common::{existing_keyword, for_each_reactor, serve, tiny_cluster};

/// ≥8 pipelined queries per epoch, across several epochs advanced over
/// the wire, each reply byte-compared against the in-process oracle —
/// on every reactor backend.
#[test]
fn pipelined_replies_are_byte_identical_to_in_process_calls_at_every_epoch() {
    for_each_reactor(|reactor| {
        let router = tiny_cluster();
        let server = serve(router.clone(), NetConfig { reactor, ..Default::default() });
        let mut client = NetClient::connect(server.local_addr()).expect("connect");
        client.set_read_timeout(Some(Duration::from_secs(60))).expect("timeout");

        let kw = existing_keyword(&router.shard(0).engine());
        // Eight distinct request shapes per round: sizes, rankings, and
        // batch shapes all vary so the codec carries real diversity.
        let shapes: Vec<Vec<(String, QueryOptions)>> = vec![
            vec![(kw.clone(), QueryOptions::default())],
            vec![(kw.clone(), QueryOptions { l: 6, ..Default::default() })],
            vec![(kw.clone(), QueryOptions { l: 9, ..Default::default() })],
            vec![(
                kw.clone(),
                QueryOptions {
                    ranking: ResultRanking::SummaryImportance,
                    l: 8,
                    ..Default::default()
                },
            )],
            vec![(kw.clone(), QueryOptions { prelim: false, l: 7, ..Default::default() })],
            vec![
                (kw.clone(), QueryOptions { l: 5, ..Default::default() }),
                (kw.clone(), QueryOptions { l: 11, ..Default::default() }),
            ],
            vec![("no-such-keyword-anywhere".to_owned(), QueryOptions::default())],
            vec![(kw.clone(), QueryOptions { l: 4, ..Default::default() })],
        ];

        let (a, p, j) = {
            let engine = router.shard(0).engine();
            (
                max_pk(engine.db(), "Author"),
                max_pk(engine.db(), "Paper"),
                max_pk(engine.db(), "AuthorPaper"),
            )
        };

        for round in 0..4i64 {
            // Pipeline: all 8 requests hit the wire before any reply is
            // read.
            let ids: Vec<u64> = shapes
                .iter()
                .map(|reqs| client.send(Opcode::Query, &encode_query_payload(reqs)).expect("send"))
                .collect();
            for (id, reqs) in ids.into_iter().zip(&shapes) {
                let (op, wire_payload) = client.recv_for(id).expect("reply");
                assert_eq!(op, Opcode::Results, "round {round}");
                // No epoch can move under this oracle call: the test
                // thread is the only writer and it is right here,
                // reading.
                let (epoch, results) = router.batch_query_at(reqs).expect("oracle");
                let oracle = encode_results_payload(epoch, &results);
                assert_eq!(
                    wire_payload, oracle,
                    "round {round}: wire bytes diverge from the in-process encoding"
                );
            }

            // Advance the epoch over the wire and verify the stamp.
            let muts = vec![
                Mutation::insert(
                    "Author",
                    vec![Value::Int(a + 1 + round), format!("Wire Author{round}").into()],
                ),
                Mutation::insert(
                    "AuthorPaper",
                    vec![Value::Int(j + 1 + round), Value::Int(a + 1 + round), Value::Int(p)],
                ),
            ];
            match client.apply(&muts).expect("apply") {
                Reply::Applied { epoch } => {
                    assert_eq!(epoch, router.stats().epochs[0].get(), "round {round}");
                }
                other => panic!("expected Applied, got {other:?}"),
            }
        }
    });
}

/// Saturating a tiny budget with a 64-deep pipeline: every request is
/// answered (no lost responses), the overflow is `Busy` — counted, not
/// silently dropped — and the counters' accounting identity holds.
#[test]
fn saturation_sheds_with_busy_and_loses_nothing() {
    for_each_reactor(|reactor| {
        let router = tiny_cluster();
        // 1 slow worker, tiny queue and budget: with a 64-frame burst
        // the shed outcome is structural, not a timing accident.
        let server = serve(
            router,
            NetConfig {
                dispatch_workers: 1,
                queue_capacity: 2,
                inflight_budget: 4,
                handler_delay: Some(Duration::from_millis(30)),
                reactor,
                ..Default::default()
            },
        );
        let mut client = NetClient::connect(server.local_addr()).expect("connect");
        client.set_read_timeout(Some(Duration::from_secs(60))).expect("timeout");

        const BURST: usize = 64;
        let mut expected: Vec<u64> = Vec::with_capacity(BURST);
        for _ in 0..BURST {
            expected.push(client.send(Opcode::Ping, &[]).expect("send"));
        }
        let mut pongs = 0usize;
        let mut busy = 0usize;
        let mut seen: Vec<u64> = Vec::with_capacity(BURST);
        for _ in 0..BURST {
            let (id, op, _) = client.recv_any().expect("every request gets a reply");
            seen.push(id);
            match op {
                Opcode::Pong => pongs += 1,
                Opcode::Busy => busy += 1,
                other => panic!("unexpected reply {other:?}"),
            }
        }
        // Exactly one reply per request — none lost, none duplicated.
        seen.sort_unstable();
        expected.sort_unstable();
        assert_eq!(seen, expected);
        assert_eq!(pongs + busy, BURST);
        // The burst lands in ~1ms while each pop takes 30ms: at most
        // budget + queue + a small completion margin can be admitted.
        assert!(busy >= BURST - 16, "only {busy} sheds out of {BURST}");
        assert!(pongs >= 1, "the server must still make progress under overload");
        // Counter accounting: sheds match the Busy replies on the wire,
        // and every frame in produced a frame out.
        let c = server.counters();
        let shed = c.shed_inflight.load(Ordering::Relaxed) + c.shed_queue.load(Ordering::Relaxed);
        assert_eq!(shed as usize, busy);
        assert_eq!(c.frames_in.load(Ordering::Relaxed) as usize, BURST);
        assert_eq!(c.frames_out.load(Ordering::Relaxed) as usize, BURST);
    });
}

/// The in-flight budget gate specifically: a queue big enough to never
/// fill makes every shed a `Busy(InflightBudget)`.
#[test]
fn inflight_budget_gate_sheds_when_queue_has_room() {
    for_each_reactor(|reactor| {
        let router = tiny_cluster();
        let server = serve(
            router,
            NetConfig {
                dispatch_workers: 1,
                queue_capacity: 64,
                inflight_budget: 2,
                handler_delay: Some(Duration::from_millis(20)),
                reactor,
                ..Default::default()
            },
        );
        let mut client = NetClient::connect(server.local_addr()).expect("connect");
        client.set_read_timeout(Some(Duration::from_secs(60))).expect("timeout");
        let ids: Vec<u64> =
            (0..32).map(|_| client.send(Opcode::Ping, &[]).expect("send")).collect();
        let mut busy = 0;
        for _ in &ids {
            let (_, op, _) = client.recv_any().expect("reply");
            if op == Opcode::Busy {
                busy += 1;
            }
        }
        assert!(busy > 0, "a 32-deep pipeline must overflow a budget of 2");
        let c = server.counters();
        assert_eq!(c.shed_queue.load(Ordering::Relaxed), 0, "the queue never filled");
        assert_eq!(c.shed_inflight.load(Ordering::Relaxed), busy);
    });
}

/// A request that panics its handler costs exactly one `Error(Internal)`
/// reply: the same connection, other clients, and the serving state all
/// keep working — the end-to-end face of the panic-safety sweep.
#[test]
fn a_panicking_request_degrades_one_reply_not_the_server() {
    for_each_reactor(|reactor| {
        let router = tiny_cluster();
        let server = serve(router.clone(), NetConfig { reactor, ..Default::default() });
        let mut client = NetClient::connect(server.local_addr()).expect("connect");
        client.set_read_timeout(Some(Duration::from_secs(60))).expect("timeout");
        let kw = existing_keyword(&router.shard(0).engine());

        // A TupleRef naming a table far out of range panics the serve
        // worker mid-summary; the dispatch worker's catch_unwind must
        // turn that into an in-band Internal error.
        let bogus =
            sizel_storage::TupleRef::new(sizel_storage::TableId(999), sizel_storage::RowId(0));
        match client.summarize(bogus, QueryOptions::default()).expect("a reply, not a hangup") {
            Reply::Error { code, .. } => assert_eq!(code, sizel_net::ErrorCode::Internal),
            other => panic!("expected Error(Internal), got {other:?}"),
        }

        // Same connection still serves.
        client.ping().expect("ping after panic");
        match client.query(&[(kw.clone(), QueryOptions::default())]).expect("query after panic") {
            Reply::Results { results, .. } => assert!(!results[0].is_empty()),
            other => panic!("expected Results, got {other:?}"),
        }
        // Fresh connections too.
        let mut second = NetClient::connect(server.local_addr()).expect("connect");
        second.set_read_timeout(Some(Duration::from_secs(60))).expect("timeout");
        second.ping().expect("fresh connection after panic");
        assert!(server.counters().errors_internal.load(Ordering::Relaxed) >= 1);
    });
}

/// The in-band metrics page carries the series the ISSUE promises:
/// shed counts (all three gates), connection gauges, reactor and
/// doorbell counters, per-shard cache ratios, refresh lag — and names
/// the backend actually serving.
#[test]
fn stats_frame_returns_the_metrics_page() {
    for_each_reactor(|reactor| {
        let router = tiny_cluster();
        let server = serve(router.clone(), NetConfig { reactor, ..Default::default() });
        let mut client = NetClient::connect(server.local_addr()).expect("connect");
        client.set_read_timeout(Some(Duration::from_secs(60))).expect("timeout");
        let kw = existing_keyword(&router.shard(0).engine());
        client.query(&[(kw, QueryOptions::default())]).expect("one query");

        let page = client.stats().expect("stats");
        let backend =
            format!("sizel_net_reactor{{backend=\"{}\"}} 1", server.reactor_kind().name());
        for series in [
            "sizel_net_connections_live",
            "sizel_net_shed_total{reason=\"inflight_budget\"}",
            "sizel_net_shed_total{reason=\"queue_full\"}",
            "sizel_net_shed_total{reason=\"outbox_full\"}",
            "sizel_net_idle_reaped_total",
            backend.as_str(),
            "sizel_net_reactor_wakeups_total",
            "sizel_net_reactor_spurious_wakeups_total",
            "sizel_net_doorbell_rings_total",
            "sizel_net_doorbell_coalesced_total",
            "sizel_net_epollout_toggles_total",
            "sizel_net_fastpath_total{result=\"hit\"}",
            "sizel_net_fastpath_total{result=\"fallback\"}",
            "sizel_net_buf_pool_total{event=\"hit\"}",
            "sizel_net_buf_pool_total{event=\"miss\"}",
            "sizel_net_buf_pool_total{event=\"recycled\"}",
            "sizel_serve_cache_hit_ratio{shard=\"0\"}",
            "sizel_serve_cache_probe_misses_total{shard=\"0\"}",
            "sizel_serve_queries_served_total{shard=\"1\"}",
            "sizel_refresh_lag{shard=\"0\"}",
            "sizel_cluster_epoch{shard=\"1\"}",
        ] {
            assert!(page.contains(series), "metrics page missing `{series}`:\n{page}");
        }
    });
}

/// Once a disk tier is attached to the shards, the metrics page grows
/// the `sizel_disk_*` series — block-cache events, segment generation,
/// WAL gauges — labelled per shard (absent before attach, which the
/// base metrics test implicitly covers by not requiring them).
#[test]
fn disk_tier_series_appear_once_attached() {
    let router = tiny_cluster();
    let dir =
        std::env::temp_dir().join(format!("sizel-net-disk-{}-{:p}", std::process::id(), &router));
    let tier = sizel_serve::DiskTierConfig {
        dir: std::path::PathBuf::new(),
        cache_pages: 8,
        fsync_every: 1,
        paged_tables: vec!["AuthorPaper".into()],
    };
    router.attach_disk_tier(&dir, &tier).expect("attach per-shard tiers");

    let server = serve(router.clone(), NetConfig::default());
    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    client.set_read_timeout(Some(Duration::from_secs(60))).expect("timeout");
    let page = client.stats().expect("stats");
    for series in [
        "sizel_disk_cache_total{shard=\"0\",event=\"hit\"}",
        "sizel_disk_cache_total{shard=\"1\",event=\"miss\"}",
        "sizel_disk_cache_total{shard=\"0\",event=\"eviction\"}",
        "sizel_disk_cache_total{shard=\"0\",event=\"recycled\"}",
        "sizel_disk_read_errors_total{shard=\"0\"}",
        "sizel_disk_resident_pages{shard=\"1\"}",
        "sizel_disk_segment_generation{shard=\"0\"}",
        "sizel_disk_segment_lists{shard=\"1\"}",
        "sizel_disk_checkpoints_total{shard=\"0\"}",
        "sizel_disk_wal_bytes{shard=\"1\"}",
        "sizel_disk_wal_appends_total{shard=\"0\"}",
        "sizel_disk_wal_syncs_total{shard=\"1\"}",
    ] {
        assert!(page.contains(series), "metrics page missing `{series}`:\n{page}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The CLI client binary drives a live server end to end (the server
/// runs the platform-default reactor — on CI the `SIZEL_NET_REACTOR`
/// matrix variable steers it through `ReactorChoice::Auto`).
#[test]
fn netcat_binary_pings_queries_and_scrapes() {
    let router = tiny_cluster();
    let server = serve(router.clone(), NetConfig::default());
    let addr = server.local_addr().to_string();
    let kw = existing_keyword(&router.shard(0).engine());
    let bin = env!("CARGO_BIN_EXE_sizel-netcat");

    let ping = std::process::Command::new(bin).args([&addr, "ping"]).output().expect("run");
    assert!(ping.status.success(), "ping failed: {ping:?}");
    assert_eq!(String::from_utf8_lossy(&ping.stdout).trim(), "pong");

    let query =
        std::process::Command::new(bin).args([&addr, "query", &kw, "6"]).output().expect("run");
    assert!(query.status.success(), "query failed: {query:?}");
    let out = String::from_utf8_lossy(&query.stdout);
    assert!(out.starts_with("epoch "), "unexpected query output: {out}");

    let stats = std::process::Command::new(bin).args([&addr, "stats"]).output().expect("run");
    assert!(stats.status.success(), "stats failed: {stats:?}");
    assert!(String::from_utf8_lossy(&stats.stdout).contains("sizel_net_connections_live"));
}
