//! The I/O-thread inline fast path (DESIGN.md §9.6), proven equivalent
//! to the queued dispatch path it shortcuts — on every reactor backend.
//!
//! The contract under test: enabling the fast path changes **latency
//! and counters only**. Every reply stays byte-identical to what the
//! queued path (and therefore the in-process oracle) produces, at every
//! epoch, across the fallback-on-miss seam, for malformed frames, and
//! when the per-pass inline budget runs out.
//!
//! The fixture runs refresh **off**: these tests assert exact
//! hit/fallback counter movements, and a background re-warm worker
//! contending on the engine lock could turn a deterministic inline hit
//! into a legitimate (but unassertable) fallback.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use sizel_cluster::{ClusterConfig, ClusterRouter};
use sizel_core::engine::{Mutation, QueryOptions};
use sizel_core::test_fixtures::max_pk;
use sizel_datagen::dblp::DblpConfig;
use sizel_net::frame::Opcode;
use sizel_net::wire::{
    encode_query_payload, encode_results_payload, encode_summarize_payload, encode_summary_payload,
};
use sizel_net::{NetClient, NetConfig, NetServer};
use sizel_storage::Value;

mod common;
use common::{existing_keyword, for_each_reactor, replicas, serve, small_serve};

/// A 2-shard partitioned cluster with the refresh worker off (exact
/// counter assertions need a quiescent engine lock).
fn quiet_cluster() -> Arc<ClusterRouter> {
    let cfg = DblpConfig::tiny();
    Arc::new(
        ClusterRouter::partitioned(
            replicas(&cfg, 2),
            ClusterConfig { serve: small_serve(), refresh: None },
        )
        .expect("cluster builds"),
    )
}

fn connect(server: &NetServer) -> NetClient {
    let client = NetClient::connect(server.local_addr()).expect("connect");
    client.set_read_timeout(Some(Duration::from_secs(60))).expect("timeout");
    client
}

/// One raw round trip, returning the reply `(opcode, payload)` without
/// decoding — the byte-comparison primitive.
fn roundtrip(client: &mut NetClient, opcode: Opcode, payload: &[u8]) -> (Opcode, Vec<u8>) {
    let id = client.send(opcode, payload).expect("send");
    client.recv_for(id).expect("reply")
}

/// Cold requests fall back to the queue; warm repeats answer inline —
/// and the bytes are identical in both regimes, at every epoch,
/// including across a wire-driven epoch advance that kills the cached
/// generation.
#[test]
fn inline_replies_are_byte_identical_across_the_miss_seam_and_epochs() {
    for_each_reactor(|reactor| {
        let router = quiet_cluster();
        let server = serve(router.clone(), NetConfig { reactor, ..Default::default() });
        let mut client = connect(&server);
        let c = server.counters();

        let kw = existing_keyword(&router.shard(0).engine());
        let reqs = vec![(kw.clone(), QueryOptions::default())];
        let qpayload = encode_query_payload(&reqs);

        // Cold query: the cache probe must miss — the request dispatches
        // and the reply comes from the queued path.
        let (op, cold) = roundtrip(&mut client, Opcode::Query, &qpayload);
        assert_eq!(op, Opcode::Results);
        assert_eq!(c.fastpath_hits.load(Ordering::Relaxed), 0, "cold probe cannot hit");
        assert_eq!(c.fastpath_fallbacks.load(Ordering::Relaxed), 1);
        // The queued reply matches the in-process oracle (the epoch
        // cannot move: this thread is the only writer).
        let (epoch, results) = router.batch_query_at(&reqs).expect("oracle");
        assert_eq!(cold, encode_results_payload(epoch, &results), "queued reply vs oracle");

        // Warm repeat: answered inline, bytes unchanged.
        let (op, warm) = roundtrip(&mut client, Opcode::Query, &qpayload);
        assert_eq!(op, Opcode::Results);
        assert_eq!(c.fastpath_hits.load(Ordering::Relaxed), 1, "warm repeat must inline");
        assert_eq!(warm, cold, "inline reply bytes diverge from the queued reply");

        // Summarize: same seam, per-DS.
        let tds = router.shard(0).engine().ds_hits(&kw)[0];
        let sopts = QueryOptions { l: 6, ..Default::default() };
        let spayload = encode_summarize_payload(tds, sopts);
        let (op, scold) = roundtrip(&mut client, Opcode::Summarize, &spayload);
        assert_eq!(op, Opcode::Summary);
        let (sepoch, sresult) = router.summarize_at(tds, sopts).expect("oracle");
        assert_eq!(scold, encode_summary_payload(sepoch, &sresult));
        let hits_before = c.fastpath_hits.load(Ordering::Relaxed);
        let (op, swarm) = roundtrip(&mut client, Opcode::Summarize, &spayload);
        assert_eq!(op, Opcode::Summary);
        assert_eq!(swarm, scold);
        assert_eq!(c.fastpath_hits.load(Ordering::Relaxed), hits_before + 1);

        // Advance the epoch over the wire: the cached generation is
        // dead, so the same query goes cold again — fallback, recompute,
        // then inline at the *new* epoch.
        let (a, p, j) = {
            let engine = router.shard(0).engine();
            (
                max_pk(engine.db(), "Author"),
                max_pk(engine.db(), "Paper"),
                max_pk(engine.db(), "AuthorPaper"),
            )
        };
        client
            .apply(&[
                Mutation::insert("Author", vec![Value::Int(a + 1), "Fastpath Author".into()]),
                Mutation::insert(
                    "AuthorPaper",
                    vec![Value::Int(j + 1), Value::Int(a + 1), Value::Int(p)],
                ),
            ])
            .expect("apply");
        let fb_before = c.fastpath_fallbacks.load(Ordering::Relaxed);
        let (op, cold2) = roundtrip(&mut client, Opcode::Query, &qpayload);
        assert_eq!(op, Opcode::Results);
        assert_eq!(
            c.fastpath_fallbacks.load(Ordering::Relaxed),
            fb_before + 1,
            "a new epoch must miss the inline probe"
        );
        let (epoch2, results2) = router.batch_query_at(&reqs).expect("oracle");
        assert!(epoch2 > epoch, "the apply advanced the epoch");
        assert_eq!(cold2, encode_results_payload(epoch2, &results2));
        let hits_before = c.fastpath_hits.load(Ordering::Relaxed);
        let (op, warm2) = roundtrip(&mut client, Opcode::Query, &qpayload);
        assert_eq!(op, Opcode::Results);
        assert_eq!(warm2, cold2);
        assert_eq!(c.fastpath_hits.load(Ordering::Relaxed), hits_before + 1);

        // A second server over the SAME router with the fast path off:
        // its (always queued) replies match the inline ones byte for
        // byte, and its fast-path counters never move.
        let off =
            serve(router.clone(), NetConfig { reactor, fastpath: false, ..Default::default() });
        let mut off_client = connect(&off);
        let (op, queued) = roundtrip(&mut off_client, Opcode::Query, &qpayload);
        assert_eq!(op, Opcode::Results);
        assert_eq!(queued, warm2, "fastpath=false server must produce the same bytes");
        let (op, squeued) = roundtrip(&mut off_client, Opcode::Summarize, &spayload);
        assert_eq!(op, Opcode::Summary);
        // The summarize cache entry died with the epoch; recompute gives
        // the new-epoch bytes — compare against a fresh oracle.
        let (sepoch2, sresult2) = router.summarize_at(tds, sopts).expect("oracle");
        assert_eq!(squeued, encode_summary_payload(sepoch2, &sresult2));
        let oc = off.counters();
        assert_eq!(oc.fastpath_hits.load(Ordering::Relaxed), 0);
        assert_eq!(oc.fastpath_fallbacks.load(Ordering::Relaxed), 0);
    });
}

/// `Ping` inlines (no cache involved), and the per-pass inline budget
/// only diverts overflow to the queue — every request is still answered
/// with a `Pong`, and every eligible frame lands in exactly one of the
/// two counters.
#[test]
fn inline_budget_diverts_overflow_to_the_queue_without_losing_replies() {
    for_each_reactor(|reactor| {
        let router = quiet_cluster();
        let server = serve(router, NetConfig { reactor, fastpath_budget: 2, ..Default::default() });
        let mut client = connect(&server);

        const BURST: usize = 16;
        let ids: Vec<u64> =
            (0..BURST).map(|_| client.send(Opcode::Ping, &[]).expect("send")).collect();
        for id in ids {
            let (op, payload) = client.recv_for(id).expect("reply");
            assert_eq!(op, Opcode::Pong);
            assert!(payload.is_empty());
        }
        let c = server.counters();
        let hits = c.fastpath_hits.load(Ordering::Relaxed);
        let fallbacks = c.fastpath_fallbacks.load(Ordering::Relaxed);
        assert!(hits >= 1, "at least the first ping of a pass inlines");
        assert_eq!(
            hits + fallbacks,
            BURST as u64,
            "every eligible frame is either inlined or counted as a fallback"
        );
    });
}

/// Malformed-but-eligible frames decline the fast path, and the queued
/// error reply is byte-identical to a fastpath-disabled server's — the
/// seam leaks nothing observable.
#[test]
fn malformed_eligible_frames_fall_back_to_the_identical_queued_error() {
    for_each_reactor(|reactor| {
        let router = quiet_cluster();
        let on = serve(router.clone(), NetConfig { reactor, ..Default::default() });
        let off =
            serve(router.clone(), NetConfig { reactor, fastpath: false, ..Default::default() });
        let mut on_client = connect(&on);
        let mut off_client = connect(&off);

        // A truncated Summarize payload and a Ping with a body: both
        // eligible opcodes, both malformed.
        for (opcode, payload) in
            [(Opcode::Summarize, &[0xDE, 0xAD, 0xBE][..]), (Opcode::Ping, &[0x01][..])]
        {
            let (op_on, bytes_on) = roundtrip(&mut on_client, opcode, payload);
            let (op_off, bytes_off) = roundtrip(&mut off_client, opcode, payload);
            assert_eq!(op_on, Opcode::Error, "{opcode:?}");
            assert_eq!(op_off, Opcode::Error, "{opcode:?}");
            assert_eq!(
                bytes_on, bytes_off,
                "{opcode:?}: the fallback error must match the queued one byte for byte"
            );
        }
        let c = on.counters();
        assert_eq!(c.fastpath_hits.load(Ordering::Relaxed), 0);
        assert_eq!(c.fastpath_fallbacks.load(Ordering::Relaxed), 2);
    });
}
