//! Adversarial framing: truncated headers, lying lengths, wrong magic,
//! unknown opcodes, garbage payloads, and a plain-HTTP scraper — the
//! server must answer each with the documented reply (or documented
//! close) and keep serving everyone else. Nothing in this file is
//! allowed to panic the server, and every scenario runs on every
//! reactor backend (`for_each_reactor`): the adversarial surface is
//! exactly where a readiness rewrite would regress first.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use sizel_core::engine::QueryOptions;
use sizel_net::frame::{
    encode_frame, encode_header, read_frame, Header, Opcode, HEADER_LEN, MAGIC, MAX_FRAME_LEN,
    VERSION,
};
use sizel_net::wire::decode_reply;
use sizel_net::{ErrorCode, NetClient, NetConfig, Reply};

mod common;
use common::{for_each_reactor, serve, tiny_cluster};

fn expect_error(client: &mut NetClient, raw: &[u8], want: ErrorCode) -> String {
    client.send_raw(raw).expect("send raw");
    let (_, op, payload) = client.recv_any().expect("an in-band reply, not a hangup");
    assert_eq!(op, Opcode::Error);
    match decode_reply(op, &payload).expect("decodes") {
        Reply::Error { code, message } => {
            assert_eq!(code, want, "{message}");
            message
        }
        other => panic!("expected Error, got {other:?}"),
    }
}

/// Reads until EOF, asserting the peer closed (used after protocol-level
/// errors, where the server must hang up once the reply flushed).
fn assert_closed(client: &mut NetClient) {
    // Any further read must hit EOF (FrameError::Io) — never a frame.
    match client.recv_any() {
        Err(_) => {}
        Ok((id, op, _)) => panic!("expected close, got frame {op:?} (id {id})"),
    }
}

#[test]
fn bad_magic_gets_protocol_error_then_close() {
    for_each_reactor(|reactor| {
        let server = serve(tiny_cluster(), NetConfig { reactor, ..Default::default() });
        let mut client = NetClient::connect(server.local_addr()).expect("connect");
        client.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
        let mut frame = encode_frame(Opcode::Ping, 42, &[]);
        frame[0] = 0xFF; // corrupt the magic
        let msg = expect_error(&mut client, &frame, ErrorCode::Protocol);
        assert!(msg.contains("magic"), "{msg}");
        assert_closed(&mut client);
        // The server as a whole is unharmed.
        let mut fresh = NetClient::connect(server.local_addr()).expect("connect");
        fresh.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
        fresh.ping().expect("server survives bad magic");
    });
}

#[test]
fn wrong_version_gets_protocol_error_then_close() {
    for_each_reactor(|reactor| {
        let server = serve(tiny_cluster(), NetConfig { reactor, ..Default::default() });
        let mut client = NetClient::connect(server.local_addr()).expect("connect");
        client.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
        let mut frame = encode_frame(Opcode::Ping, 1, &[]);
        frame[2] = VERSION + 9;
        expect_error(&mut client, &frame, ErrorCode::Protocol);
        assert_closed(&mut client);
    });
}

#[test]
fn oversized_length_is_rejected_before_any_allocation() {
    for_each_reactor(|reactor| {
        let server = serve(tiny_cluster(), NetConfig { reactor, ..Default::default() });
        let mut client = NetClient::connect(server.local_addr()).expect("connect");
        client.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
        // A header announcing a 2 GiB payload, with no payload behind
        // it: the server must reject on the header alone.
        let mut head = encode_header(Header { opcode: Opcode::Query, req_id: 9, len: 0 });
        head[12..16].copy_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        let msg = expect_error(&mut client, &head, ErrorCode::Protocol);
        assert!(msg.contains("exceeds"), "{msg}");
        assert_closed(&mut client);
    });
}

#[test]
fn unknown_opcode_gets_an_error_and_the_connection_survives() {
    for_each_reactor(|reactor| {
        let server = serve(tiny_cluster(), NetConfig { reactor, ..Default::default() });
        let mut client = NetClient::connect(server.local_addr()).expect("connect");
        client.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
        // Valid magic/version/length, nonsense opcode: the frame
        // boundary is trustworthy, so the server skips exactly this
        // frame.
        let mut head = encode_header(Header { opcode: Opcode::Ping, req_id: 77, len: 3 });
        head[3] = 0x7F;
        let mut frame = head.to_vec();
        frame.extend_from_slice(b"abc");
        client.send_raw(&frame).expect("send raw");
        let (id, op, payload) = client.recv_any().expect("reply");
        assert_eq!(id, 77, "the bogus frame's id is echoed");
        assert_eq!(op, Opcode::Error);
        match decode_reply(op, &payload).expect("decodes") {
            Reply::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownOpcode),
            other => panic!("expected Error, got {other:?}"),
        }
        // Same connection keeps serving — no close for payload-level
        // junk.
        client.ping().expect("connection survives an unknown opcode");
    });
}

#[test]
fn malformed_payload_gets_an_error_and_the_connection_survives() {
    for_each_reactor(|reactor| {
        let server = serve(tiny_cluster(), NetConfig { reactor, ..Default::default() });
        let mut client = NetClient::connect(server.local_addr()).expect("connect");
        client.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
        // A Query whose payload is garbage.
        let id = client.send(Opcode::Query, b"\xDE\xAD\xBE\xEF").expect("send");
        let (op, payload) = client.recv_for(id).expect("reply");
        match decode_reply(op, &payload).expect("decodes") {
            Reply::Error { code, .. } => assert_eq!(code, ErrorCode::MalformedPayload),
            other => panic!("expected Error, got {other:?}"),
        }
        // A reply opcode used as a request is payload-level nonsense
        // too.
        let id = client.send(Opcode::Results, &[]).expect("send");
        let (op, payload) = client.recv_for(id).expect("reply");
        match decode_reply(op, &payload).expect("decodes") {
            Reply::Error { code, .. } => assert_eq!(code, ErrorCode::MalformedPayload),
            other => panic!("expected Error, got {other:?}"),
        }
        client.ping().expect("connection survives malformed payloads");
    });
}

#[test]
fn truncated_header_then_hangup_never_wedges_the_server() {
    for_each_reactor(|reactor| {
        let server = serve(tiny_cluster(), NetConfig { reactor, ..Default::default() });
        // Drip half a header, then vanish.
        {
            let mut s = TcpStream::connect(server.local_addr()).expect("connect");
            s.write_all(&encode_frame(Opcode::Ping, 5, &[])[..HEADER_LEN / 2])
                .expect("half header");
            // dropped here — RST/FIN mid-frame
        }
        // Drip a full header promising a payload that never comes.
        {
            let mut s = TcpStream::connect(server.local_addr()).expect("connect");
            s.write_all(&encode_header(Header { opcode: Opcode::Query, req_id: 6, len: 100 }))
                .expect("header only");
        }
        // The server shrugs both off.
        let mut client = NetClient::connect(server.local_addr()).expect("connect");
        client.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
        client.ping().expect("server survives truncated peers");
    });
}

#[test]
fn byte_at_a_time_delivery_still_parses() {
    for_each_reactor(|reactor| {
        let server = serve(tiny_cluster(), NetConfig { reactor, ..Default::default() });
        let mut s = TcpStream::connect(server.local_addr()).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
        let frame = encode_frame(Opcode::Ping, 11, &[]);
        for b in frame {
            s.write_all(&[b]).expect("one byte");
            std::thread::sleep(Duration::from_millis(1));
        }
        let (h, payload) = read_frame(&mut s).expect("pong");
        assert_eq!((h.opcode, h.req_id), (Opcode::Pong, 11));
        assert!(payload.is_empty());
    });
}

#[test]
fn http_get_scrapes_the_metrics_page() {
    for_each_reactor(|reactor| {
        let server = serve(tiny_cluster(), NetConfig { reactor, ..Default::default() });
        let mut s = TcpStream::connect(server.local_addr()).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
        s.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").expect("request");
        let mut resp = String::new();
        s.read_to_string(&mut resp).expect("response until close");
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        assert!(resp.contains("sizel_net_connections_live"), "{resp}");
        assert!(resp.contains("sizel_refresh_lag"), "{resp}");
        // And the sizel-net protocol still runs beside the scraper
        // path.
        let mut client = NetClient::connect(server.local_addr()).expect("connect");
        client.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
        client.ping().expect("frames after a scrape");
    });
}

/// The two octet spaces can never collide: every valid frame starts
/// with `MAGIC` ("LS"), no HTTP method starts with those bytes.
#[test]
fn magic_and_http_prefixes_are_disjoint() {
    let magic = MAGIC.to_le_bytes();
    assert_ne!(&magic[..], &b"GE"[..]);
    assert_eq!(magic, [0x4C, 0x53]); // "LS"
}

/// Interleave garbage connections with a live pipelined workload: the
/// well-behaved client must see every reply despite the chaos peers.
#[test]
fn chaos_peers_do_not_disturb_a_pipelined_client() {
    for_each_reactor(|reactor| {
        let server = serve(tiny_cluster(), NetConfig { reactor, ..Default::default() });
        let mut client = NetClient::connect(server.local_addr()).expect("connect");
        client.set_read_timeout(Some(Duration::from_secs(60))).expect("timeout");
        let ids: Vec<u64> = (0..8).map(|_| client.send(Opcode::Ping, &[]).expect("send")).collect();
        // Chaos: bad magic, truncated, oversized, instant hangups.
        for junk in [&b"\xFF\xFF\xFF\xFF\xFF\xFF\xFF\xFF"[..], &b"GE"[..], &b"\x4C"[..]] {
            let mut s = TcpStream::connect(server.local_addr()).expect("connect");
            let _ = s.write_all(junk);
        }
        for id in ids {
            let (op, _) = client.recv_for(id).expect("reply despite chaos");
            assert_eq!(op, Opcode::Pong);
        }
        let opts = QueryOptions { l: 5, ..Default::default() };
        let _ = client.query(&[("anything".to_owned(), opts)]).expect("still serving");
    });
}
