//! Pins DESIGN.md §9.1 against the generated protocol reference: the
//! table in the docs must be the `sizel-proto-doc` output, byte for
//! byte, so the documented wire registry cannot drift from the
//! `Opcode` enum.

use sizel_net::protocol_reference_table;

#[test]
fn design_md_embeds_the_generated_opcode_table_verbatim() {
    let design_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../DESIGN.md");
    let design = std::fs::read_to_string(design_path).expect("DESIGN.md at the workspace root");
    let table = protocol_reference_table();
    assert!(
        design.contains(&table),
        "DESIGN.md §9.1 has drifted from the Opcode enum — regenerate it with\n\
         `cargo run -p sizel-net --bin sizel-proto-doc` and paste the table verbatim.\n\
         Expected table:\n{table}"
    );
}
