//! Allocation-count guard for the zero-copy wire path (DESIGN.md §9.6):
//! once the server's buffer pool, receive buffers, and the client's
//! send scratch are warm, a `Ping` round trip and a warm (cache-hit)
//! `Summarize` round trip must cost a **small constant** number of heap
//! allocations — process-wide, both sides of the socket counted.
//!
//! What "warm steady state" buys, concretely: the client reuses one
//! frame-encoding buffer; the server parses requests in place from a
//! compacting receive buffer, answers both shapes on the I/O-thread
//! fast path from pooled reply buffers, and recycles every buffer on
//! flush. The only alloc left per round trip is the client's own reply
//! payload vector (zero-length for `Pong`, so a ping round trip is
//! allocation-free).
//!
//! A counting wrapper around the system allocator is installed for this
//! test binary. Keep this file to a SINGLE `#[test]`: the counter is
//! process-global, and a concurrently running test in the same binary
//! would pollute the measured window. (The fixture also runs refresh
//! off — a background re-warm thread would allocate into the window.)

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sizel_cluster::{ClusterConfig, ClusterRouter};
use sizel_core::engine::QueryOptions;
use sizel_datagen::dblp::DblpConfig;
use sizel_net::frame::Opcode;
use sizel_net::wire::encode_summarize_payload;
use sizel_net::{NetClient, NetConfig};

mod common;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System`; the counter is a relaxed
// atomic with no allocation of its own.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc that moves is an allocation for our purposes: a warm
        // steady state must not grow any buffer.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Per-round-trip allocation caps, process-wide. Measured on this
/// fixture: 0 for Ping (nothing on either side), 1 for warm Summarize
/// (the client's reply payload vector). The headroom guards flakiness
/// from e.g. a one-off lazy stdlib initialization, not growth — a
/// per-frame copy or a lost pooled buffer costs ≥ 1 *per round trip*
/// and blows the cap immediately.
const PING_CAP_PER_RT: u64 = 2;
const SUMMARIZE_CAP_PER_RT: u64 = 8;

#[test]
fn warm_wire_roundtrips_allocate_a_small_constant() {
    for reactor in common::reactor_choices() {
        eprintln!("--- reactor backend: {reactor:?} ---");
        // Refresh off: no background thread may allocate into the window.
        let router = Arc::new(
            ClusterRouter::partitioned(
                common::replicas(&DblpConfig::tiny(), 2),
                ClusterConfig { serve: common::small_serve(), refresh: None },
            )
            .expect("cluster builds"),
        );
        let server = common::serve(router.clone(), NetConfig { reactor, ..Default::default() });
        let mut client = NetClient::connect(server.local_addr()).expect("connect");
        client.set_read_timeout(Some(Duration::from_secs(60))).expect("timeout");

        let kw = common::existing_keyword(&router.shard(0).engine());
        let tds = router.shard(0).engine().ds_hits(&kw)[0];
        let spayload = encode_summarize_payload(tds, QueryOptions { l: 6, ..Default::default() });

        // Warm: grow every buffer to its high-water mark — the client
        // send scratch, the connection's receive buffer, the pool's free
        // list, the outbox/write queues — and populate the serve cache so
        // the measured summaries are inline cache hits.
        for _ in 0..64 {
            let id = client.send(Opcode::Ping, &[]).expect("send");
            let (op, _) = client.recv_for(id).expect("reply");
            assert_eq!(op, Opcode::Pong);
        }
        for _ in 0..16 {
            let id = client.send(Opcode::Summarize, &spayload).expect("send");
            let (op, _) = client.recv_for(id).expect("reply");
            assert_eq!(op, Opcode::Summary);
        }

        // Measure: ping round trips.
        const PINGS: u64 = 32;
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for _ in 0..PINGS {
            let id = client.send(Opcode::Ping, &[]).expect("send");
            let (op, payload) = client.recv_for(id).expect("reply");
            assert_eq!(op, Opcode::Pong);
            assert!(payload.is_empty());
        }
        let ping_delta = ALLOCATIONS.load(Ordering::SeqCst) - before;
        eprintln!("net_alloc_guard: {ping_delta} allocations over {PINGS} ping round trips");
        assert!(
            ping_delta <= PING_CAP_PER_RT * PINGS,
            "ping round trips allocated {ping_delta} times over {PINGS} calls \
             (cap {PING_CAP_PER_RT}/call) — a per-frame copy or buffer crept back \
             into the wire path"
        );

        // Measure: warm summarize round trips (inline cache hits).
        const SUMS: u64 = 16;
        let mut reference: Option<Vec<u8>> = None;
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for _ in 0..SUMS {
            let id = client.send(Opcode::Summarize, &spayload).expect("send");
            let (op, payload) = client.recv_for(id).expect("reply");
            assert_eq!(op, Opcode::Summary);
            match &reference {
                None => reference = Some(payload),
                Some(r) => assert_eq!(&payload, r, "warm replies must not drift"),
            }
        }
        let sum_delta = ALLOCATIONS.load(Ordering::SeqCst) - before;
        eprintln!(
            "net_alloc_guard: {sum_delta} allocations over {SUMS} warm summarize round trips"
        );
        // The first measured iteration allocates the reference clone's
        // buffer; discount it.
        assert!(
            sum_delta.saturating_sub(2) <= SUMMARIZE_CAP_PER_RT * SUMS,
            "warm summarize round trips allocated {sum_delta} times over {SUMS} calls \
             (cap {SUMMARIZE_CAP_PER_RT}/call) — the pooled reply path is leaking \
             allocations"
        );

        // The measured round trips really took the inline fast path.
        let c = server.counters();
        assert!(
            c.fastpath_hits.load(Ordering::Relaxed) >= PINGS + SUMS,
            "the measured window should have been served inline (hits = {})",
            c.fastpath_hits.load(Ordering::Relaxed)
        );
        // And the pool really recycled: flushes return buffers.
        assert!(c.buf_pool_recycled.load(Ordering::Relaxed) > 0);
    }
}
