//! Pooled frame buffers: a free list of `Vec<u8>`s recycled between
//! the I/O thread and the dispatch workers (DESIGN.md §9.6).
//!
//! Every buffer in flight holds exactly **one** frame (header +
//! payload, written in place by [`crate::frame::begin_frame`] /
//! [`crate::frame::finish_frame`]) or one request payload travelling
//! to the dispatch pool. One-frame-per-buffer is what makes both ends
//! of the lifecycle cheap: the flusher can hand the kernel many frames
//! in a single `write_vectored` call without copying them into a
//! staging buffer first, and a fully-written frame goes straight back
//! to the free list with its capacity intact.
//!
//! At steady state — warm connections, pool primed by the first few
//! round trips — `acquire` and `release` are a mutex'd `Vec`
//! push/pop with **zero** allocator traffic, which is what the net
//! alloc-guard suite pins. The pool is deliberately simple: no
//! per-size classes (frames on one workload are similarly sized, and
//! a `Vec`'s capacity adapts upward on first use), a bounded free
//! list (overflow buffers just drop), and a retention cap so one
//! pathological 16 MiB reply cannot pin its allocation forever.

use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

use crate::metrics::NetCounters;

/// Free-list capacity: more buffers than this in flight simply
/// allocate (and free) like before the pool existed.
const MAX_POOLED: usize = 64;

/// A buffer whose capacity grew past this returns to the allocator
/// instead of the free list — recycling is for the common small frames,
/// not for pinning one giant reply's memory.
const MAX_RETAIN_BYTES: usize = 256 * 1024;

/// A shared free list of frame buffers (see module docs). Cheap to
/// clone the `Arc` into every worker; all counters land in the shared
/// [`NetCounters`] so the metrics page can expose pool efficiency.
pub struct BufPool {
    free: Mutex<Vec<Vec<u8>>>,
    /// Pre-size hint for freshly allocated buffers (misses).
    init_capacity: usize,
    counters: Arc<NetCounters>,
}

impl BufPool {
    /// A pool whose miss-path buffers start at `init_capacity` bytes.
    pub fn new(init_capacity: usize, counters: Arc<NetCounters>) -> Self {
        BufPool { free: Mutex::new(Vec::with_capacity(MAX_POOLED)), init_capacity, counters }
    }

    /// Hands out an empty buffer: recycled when the free list has one
    /// (`buf_pool` hit), freshly allocated otherwise (miss).
    pub fn acquire(&self) -> Vec<u8> {
        let recycled = self.free.lock().unwrap_or_else(|p| p.into_inner()).pop();
        match recycled {
            Some(buf) => {
                NetCounters::bump(&self.counters.buf_pool_hits);
                buf
            }
            None => {
                NetCounters::bump(&self.counters.buf_pool_misses);
                Vec::with_capacity(self.init_capacity)
            }
        }
    }

    /// Returns a buffer to the free list (cleared, capacity kept) —
    /// or drops it when the list is full or the buffer outgrew the
    /// retention cap. Accepts buffers the pool never handed out (the
    /// HTTP scrape path builds its response elsewhere); they become
    /// pool capital like any other.
    pub fn release(&self, mut buf: Vec<u8>) {
        if buf.capacity() == 0 || buf.capacity() > MAX_RETAIN_BYTES {
            return;
        }
        buf.clear();
        let mut free = self.free.lock().unwrap_or_else(|p| p.into_inner());
        if free.len() < MAX_POOLED {
            free.push(buf);
            drop(free);
            self.counters.buf_pool_recycled.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Buffers currently parked on the free list.
    pub fn idle(&self) -> usize {
        self.free.lock().unwrap_or_else(|p| p.into_inner()).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> BufPool {
        BufPool::new(512, Arc::new(NetCounters::default()))
    }

    #[test]
    fn acquire_release_recycles_capacity() {
        let p = pool();
        let mut a = p.acquire();
        assert_eq!(NetCounters::get(&p.counters.buf_pool_misses), 1);
        a.extend_from_slice(&[7u8; 100]);
        let cap = a.capacity();
        p.release(a);
        assert_eq!(p.idle(), 1);
        let b = p.acquire();
        assert_eq!(NetCounters::get(&p.counters.buf_pool_hits), 1);
        assert!(b.is_empty(), "recycled buffers come back cleared");
        assert_eq!(b.capacity(), cap, "and keep their capacity");
    }

    #[test]
    fn oversized_and_overflow_buffers_are_dropped_not_pooled() {
        let p = pool();
        p.release(Vec::with_capacity(MAX_RETAIN_BYTES + 1));
        assert_eq!(p.idle(), 0, "a giant buffer must not pin its memory");
        p.release(Vec::new());
        assert_eq!(p.idle(), 0, "a zero-capacity buffer is worthless capital");
        for _ in 0..MAX_POOLED + 10 {
            p.release(Vec::with_capacity(64));
        }
        assert_eq!(p.idle(), MAX_POOLED, "the free list is bounded");
        assert_eq!(NetCounters::get(&p.counters.buf_pool_recycled), MAX_POOLED as u64);
    }

    #[test]
    fn foreign_buffers_become_pool_capital() {
        let p = pool();
        p.release(b"HTTP/1.1 200 OK".to_vec());
        assert_eq!(p.idle(), 1);
        assert!(p.acquire().is_empty());
    }
}
