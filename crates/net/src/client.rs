//! A blocking pipelining client over the sizel-net protocol — the
//! library behind the `sizel-netcat` binary and the loopback e2e suite.
//!
//! The client separates *send* from *receive*: [`NetClient::send`]
//! queues a request and returns its id immediately, so a caller can put
//! many requests on the wire before reading any reply (the server
//! answers in completion order, not submission order).
//! [`NetClient::recv_for`] parks out-of-order replies until asked for,
//! so interleaved waiters never lose frames.

use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use sizel_core::engine::{Mutation, QueryOptions};
use sizel_storage::TupleRef;

use crate::frame::{begin_frame, finish_frame, read_frame, FrameError, Opcode};
use crate::wire::{
    decode_reply, encode_apply_into, encode_query_into, encode_summarize_into, Reply, WireError,
};

/// Everything a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// The stream failed or the peer broke framing.
    Frame(FrameError),
    /// The reply payload did not decode.
    Wire(WireError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "{e}"),
            ClientError::Wire(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Frame(FrameError::Io(e))
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// A blocking connection to a sizel-net server.
pub struct NetClient {
    stream: TcpStream,
    next_id: u64,
    /// Replies read while waiting for a different id, keyed by theirs.
    parked: HashMap<u64, (Opcode, Vec<u8>)>,
    /// Reused frame-encoding scratch: a send allocates nothing once the
    /// buffer has grown to the workload's frame size.
    sendbuf: Vec<u8>,
}

impl NetClient {
    /// Connects to `addr`.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(NetClient {
            stream,
            next_id: 1,
            parked: HashMap::new(),
            sendbuf: Vec::with_capacity(256),
        })
    }

    /// Bounds every receive; `None` blocks indefinitely.
    pub fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(t)
    }

    /// Sends one request frame, returning its id without waiting for the
    /// reply — the pipelining primitive.
    pub fn send(&mut self, opcode: Opcode, payload: &[u8]) -> io::Result<u64> {
        self.send_with(opcode, |buf| buf.extend_from_slice(payload))
    }

    /// Sends one request frame whose payload `write` encodes directly
    /// into the client's reused scratch buffer — header and payload are
    /// written once, with no intermediate payload vector.
    pub fn send_with(
        &mut self,
        opcode: Opcode,
        write: impl FnOnce(&mut Vec<u8>),
    ) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        let mut buf = std::mem::take(&mut self.sendbuf);
        begin_frame(&mut buf, opcode, id);
        write(&mut buf);
        finish_frame(&mut buf, opcode);
        let res = self.stream.write_all(&buf);
        self.sendbuf = buf;
        res.map(|()| id)
    }

    /// Sends raw bytes as-is — the malformed-frame suite's hook.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Receives the next reply frame, whatever request it answers.
    pub fn recv_any(&mut self) -> Result<(u64, Opcode, Vec<u8>), FrameError> {
        if let Some(&id) = self.parked.keys().next() {
            let (op, payload) = self.parked.remove(&id).expect("just found");
            return Ok((id, op, payload));
        }
        let (h, payload) = read_frame(&mut self.stream)?;
        Ok((h.req_id, h.opcode, payload))
    }

    /// Receives the reply to `id`, parking any other replies that arrive
    /// first.
    pub fn recv_for(&mut self, id: u64) -> Result<(Opcode, Vec<u8>), FrameError> {
        if let Some(found) = self.parked.remove(&id) {
            return Ok(found);
        }
        loop {
            let (h, payload) = read_frame(&mut self.stream)?;
            if h.req_id == id {
                return Ok((h.opcode, payload));
            }
            self.parked.insert(h.req_id, (h.opcode, payload));
        }
    }

    /// Send + receive + decode in one round trip.
    pub fn call(&mut self, opcode: Opcode, payload: &[u8]) -> Result<Reply, ClientError> {
        self.call_with(opcode, |buf| buf.extend_from_slice(payload))
    }

    /// [`send_with`](Self::send_with) + receive + decode in one round
    /// trip.
    pub fn call_with(
        &mut self,
        opcode: Opcode,
        write: impl FnOnce(&mut Vec<u8>),
    ) -> Result<Reply, ClientError> {
        let id = self.send_with(opcode, write)?;
        let (op, reply_payload) = self.recv_for(id)?;
        Ok(decode_reply(op, &reply_payload)?)
    }

    /// Liveness round trip.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(Opcode::Ping, &[])? {
            Reply::Pong => Ok(()),
            other => Err(WireError(format!("expected Pong, got {other:?}")).into()),
        }
    }

    /// One keyword-query batch.
    pub fn query(&mut self, requests: &[(String, QueryOptions)]) -> Result<Reply, ClientError> {
        self.call_with(Opcode::Query, |buf| encode_query_into(buf, requests))
    }

    /// One per-DS summary.
    pub fn summarize(&mut self, tds: TupleRef, opts: QueryOptions) -> Result<Reply, ClientError> {
        self.call_with(Opcode::Summarize, |buf| encode_summarize_into(buf, tds, opts))
    }

    /// One cluster-wide mutation batch.
    pub fn apply(&mut self, mutations: &[Mutation]) -> Result<Reply, ClientError> {
        self.call_with(Opcode::ApplyBatch, |buf| encode_apply_into(buf, mutations))
    }

    /// The metrics page.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        match self.call(Opcode::Stats, &[])? {
            Reply::StatsText { text } => Ok(text),
            other => Err(WireError(format!("expected StatsText, got {other:?}")).into()),
        }
    }
}
