//! The TCP front-end itself (DESIGN.md §9.3).
//!
//! One nonblocking I/O thread owns the listener and every connection:
//! it accepts, reads bytes into per-connection buffers, cuts complete
//! frames, runs **admission control**, and drains per-connection
//! outboxes back to the sockets. Decoding and execution happen on a
//! pool of dispatch workers fed through the serve layer's
//! [`BoundedQueue`] — the same MPMC primitive the shards' own worker
//! pools use.
//!
//! ## Backpressure and shedding
//!
//! Two gates bound the work a client can park in the server, and both
//! reject with an explicit [`Opcode::Busy`] reply — a shed request is
//! *never* silently dropped, and it is rejected **before** execution,
//! so it has no partial effects:
//!
//! 1. **Per-connection in-flight budget** (`NetConfig::inflight_budget`):
//!    admitted-but-unanswered requests per connection. One greedy
//!    pipeliner saturates its own budget, not the server.
//! 2. **Dispatch queue capacity** (`NetConfig::queue_capacity`): the
//!    server-wide bound, enforced by [`BoundedQueue::try_push`] — the
//!    I/O thread never blocks on a full queue.
//!
//! ## Panic containment
//!
//! Every request executes under `catch_unwind`: a handler panic becomes
//! an `Error(Internal)` reply on that request and the worker moves on.
//! Combined with the poison-recovering locks underneath (serve queue,
//! cache shards, hot sketch, cluster gate), one bad request degrades
//! one reply — it cannot take down the connection, the worker pool, or
//! the shared serving state.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use sizel_cluster::ClusterRouter;
use sizel_serve::{BoundedQueue, TryPushError};

use crate::frame::{
    decode_header, encode_frame, BusyReason, ErrorCode, FrameError, Opcode, HEADER_LEN,
    MAX_FRAME_LEN,
};
use crate::metrics::{render_http_metrics, render_metrics, NetCounters};
use crate::wire::{
    decode_request, encode_applied_payload, encode_busy_payload, encode_error_payload,
    encode_results_payload, encode_stats_payload, encode_summary_payload, Request,
};

/// Front-end construction parameters.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Dispatch worker threads (decode + execute + encode).
    pub dispatch_workers: usize,
    /// Server-wide dispatch queue bound; overflow sheds with
    /// `Busy(QueueFull)`.
    pub queue_capacity: usize,
    /// Per-connection cap on admitted-but-unanswered requests; overflow
    /// sheds with `Busy(InflightBudget)`.
    pub inflight_budget: usize,
    /// Test/bench hook: every dispatch worker sleeps this long before
    /// executing a request, making queue/budget saturation deterministic
    /// on any machine. `None` (the default) in production.
    pub handler_delay: Option<Duration>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            dispatch_workers: 2,
            queue_capacity: 64,
            inflight_budget: 32,
            handler_delay: None,
        }
    }
}

/// State shared between the I/O thread and dispatch workers for one
/// connection.
struct ConnShared {
    /// Encoded reply frames awaiting the I/O thread's next write pass.
    outbox: Mutex<VecDeque<Vec<u8>>>,
    /// Admitted-but-unanswered requests (the budget gate's counter).
    in_flight: AtomicUsize,
}

impl ConnShared {
    /// Queues one encoded reply frame (any thread).
    fn enqueue_reply(&self, counters: &NetCounters, frame: Vec<u8>) {
        self.outbox.lock().unwrap_or_else(|p| p.into_inner()).push_back(frame);
        NetCounters::bump(&counters.frames_out);
    }
}

/// One admitted request travelling to the dispatch pool.
struct NetJob {
    conn: Arc<ConnShared>,
    opcode: Opcode,
    req_id: u64,
    payload: Vec<u8>,
}

/// Per-connection state owned by the I/O thread.
struct Conn {
    stream: TcpStream,
    shared: Arc<ConnShared>,
    /// Received-but-unparsed bytes.
    inbuf: Vec<u8>,
    /// Bytes being written; `write_pos` marks progress through them.
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Peer hung up or the stream failed.
    dead: bool,
    /// Stop reading/parsing; flush the outbox and close. Set by
    /// protocol errors and by the HTTP scrape path.
    close_after_flush: bool,
    /// The connection turned out to be a plain-HTTP scraper.
    http: bool,
}

/// The running front-end. Dropping it stops the I/O thread, closes the
/// dispatch queue, and joins every worker.
pub struct NetServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    queue: Arc<BoundedQueue<NetJob>>,
    counters: Arc<NetCounters>,
    router: Arc<ClusterRouter>,
    io_handle: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl NetServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving `router` over it.
    pub fn bind(router: Arc<ClusterRouter>, addr: &str, cfg: NetConfig) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(BoundedQueue::new(cfg.queue_capacity.max(1)));
        let counters = Arc::new(NetCounters::default());

        let workers = (0..cfg.dispatch_workers.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                let router = Arc::clone(&router);
                let counters = Arc::clone(&counters);
                let delay = cfg.handler_delay;
                std::thread::Builder::new()
                    .name(format!("sizel-net-worker-{i}"))
                    .spawn(move || worker_loop(&queue, &router, &counters, delay))
                    .expect("spawn net worker")
            })
            .collect();

        let io_handle = {
            let shutdown = Arc::clone(&shutdown);
            let queue = Arc::clone(&queue);
            let router = Arc::clone(&router);
            let counters = Arc::clone(&counters);
            let budget = cfg.inflight_budget.max(1);
            std::thread::Builder::new()
                .name("sizel-net-io".into())
                .spawn(move || io_loop(listener, &shutdown, &queue, &router, &counters, budget))
                .expect("spawn net io thread")
        };

        Ok(NetServer {
            addr: local,
            shutdown,
            queue,
            counters,
            router,
            io_handle: Some(io_handle),
            workers,
        })
    }

    /// The bound address (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The front-end's live counters.
    pub fn counters(&self) -> &NetCounters {
        &self.counters
    }

    /// The served cluster (for in-process oracles in tests/benches).
    pub fn router(&self) -> &Arc<ClusterRouter> {
        &self.router
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        self.queue.close();
        if let Some(h) = self.io_handle.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------
// Dispatch workers
// ---------------------------------------------------------------------

fn worker_loop(
    queue: &BoundedQueue<NetJob>,
    router: &ClusterRouter,
    counters: &NetCounters,
    delay: Option<Duration>,
) {
    while let Some(job) = queue.pop() {
        if let Some(d) = delay {
            std::thread::sleep(d);
        }
        // A panicking handler must cost exactly one reply: catch it,
        // answer Error(Internal), move to the next job. The state the
        // panic touched recovers via the poison-safe locks underneath.
        let reply = catch_unwind(AssertUnwindSafe(|| {
            handle_request(router, counters, job.opcode, &job.payload)
        }))
        .unwrap_or_else(|panic| {
            NetCounters::bump(&counters.errors_internal);
            let msg = panic_message(&panic);
            (Opcode::Error, encode_error_payload(ErrorCode::Internal, &msg))
        });
        job.conn.enqueue_reply(counters, encode_frame(reply.0, job.req_id, &reply.1));
        // Budget release strictly after the reply is visible to the
        // flusher, so close-after-flush never races a missing reply.
        job.conn.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("handler panicked: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("handler panicked: {s}")
    } else {
        "handler panicked".to_owned()
    }
}

fn handle_request(
    router: &ClusterRouter,
    counters: &NetCounters,
    opcode: Opcode,
    payload: &[u8],
) -> (Opcode, Vec<u8>) {
    let request = match decode_request(opcode, payload) {
        Ok(r) => r,
        Err(e) => {
            NetCounters::bump(&counters.errors_malformed);
            return (
                Opcode::Error,
                encode_error_payload(ErrorCode::MalformedPayload, &e.to_string()),
            );
        }
    };
    let bad_request = |counters: &NetCounters, e: String| {
        NetCounters::bump(&counters.errors_bad_request);
        (Opcode::Error, encode_error_payload(ErrorCode::BadRequest, &e))
    };
    match request {
        Request::Ping => (Opcode::Pong, Vec::new()),
        Request::Stats => {
            (Opcode::StatsText, encode_stats_payload(&render_metrics(counters, router)))
        }
        Request::Query { requests } => match router.batch_query_at(&requests) {
            Ok((epoch, results)) => (Opcode::Results, encode_results_payload(epoch, &results)),
            Err(e) => bad_request(counters, e.to_string()),
        },
        Request::Summarize { tds, opts } => match router.summarize_at(tds, opts) {
            Ok((epoch, result)) => (Opcode::Summary, encode_summary_payload(epoch, &result)),
            Err(e) => bad_request(counters, e.to_string()),
        },
        Request::ApplyBatch { mutations } => match router.apply_batch(mutations) {
            Ok(epoch) => (Opcode::Applied, encode_applied_payload(epoch)),
            Err(e) => bad_request(counters, e.to_string()),
        },
    }
}

// ---------------------------------------------------------------------
// The I/O thread
// ---------------------------------------------------------------------

/// Idle sleep when a poll pass moved no bytes — the latency floor of
/// the hand-rolled loop (no epoll/kqueue dependency).
const IDLE_SLEEP: Duration = Duration::from_micros(300);

fn io_loop(
    listener: TcpListener,
    shutdown: &AtomicBool,
    queue: &Arc<BoundedQueue<NetJob>>,
    router: &Arc<ClusterRouter>,
    counters: &NetCounters,
    budget: usize,
) {
    let mut conns: Vec<Conn> = Vec::new();
    while !shutdown.load(Ordering::Acquire) {
        let mut progressed = false;

        // Accept everything pending.
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    NetCounters::bump(&counters.connections_opened);
                    NetCounters::bump(&counters.connections_live);
                    conns.push(Conn {
                        stream,
                        shared: Arc::new(ConnShared {
                            outbox: Mutex::new(VecDeque::new()),
                            in_flight: AtomicUsize::new(0),
                        }),
                        inbuf: Vec::new(),
                        write_buf: Vec::new(),
                        write_pos: 0,
                        dead: false,
                        close_after_flush: false,
                        http: false,
                    });
                    progressed = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }

        for conn in conns.iter_mut() {
            progressed |= poll_conn(conn, queue, router, counters, budget);
        }

        // Reap: dead streams, and clean closes once every admitted
        // request has been answered and flushed.
        conns.retain(|c| {
            let done_flushing = c.write_pos >= c.write_buf.len()
                && c.shared.outbox.lock().unwrap_or_else(|p| p.into_inner()).is_empty()
                && c.shared.in_flight.load(Ordering::Acquire) == 0;
            let drop_it = c.dead || (c.close_after_flush && done_flushing);
            if drop_it {
                counters.connections_live.fetch_sub(1, Ordering::Relaxed);
            }
            !drop_it
        });

        if !progressed {
            std::thread::sleep(IDLE_SLEEP);
        }
    }
    // Shutdown: connections drop here, closing their sockets.
}

/// One poll pass over a connection: read, parse/admit, flush. Returns
/// whether any bytes moved.
fn poll_conn(
    conn: &mut Conn,
    queue: &Arc<BoundedQueue<NetJob>>,
    router: &Arc<ClusterRouter>,
    counters: &NetCounters,
    budget: usize,
) -> bool {
    let mut progressed = false;

    // Read whatever the socket has.
    if !conn.dead && !conn.close_after_flush {
        let mut chunk = [0u8; 4096];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.dead = true;
                    break;
                }
                Ok(n) => {
                    conn.inbuf.extend_from_slice(&chunk[..n]);
                    progressed = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
    }

    // A plain-HTTP scraper? The frame magic is "LS"; an ASCII "GET "
    // can't be a frame, so the first four octets decide once.
    if !conn.http && !conn.close_after_flush && conn.inbuf.len() >= 4 && &conn.inbuf[..4] == b"GET "
    {
        conn.http = true;
        conn.close_after_flush = true;
        NetCounters::bump(&counters.http_scrapes);
        let resp = render_http_metrics(counters, router);
        conn.shared.outbox.lock().unwrap_or_else(|p| p.into_inner()).push_back(resp);
        conn.inbuf.clear();
    }

    // Cut complete frames and run admission.
    while !conn.http && !conn.close_after_flush && conn.inbuf.len() >= HEADER_LEN {
        let head: [u8; HEADER_LEN] = conn.inbuf[..HEADER_LEN].try_into().expect("16 bytes");
        // The id is at a fixed offset; even a rejected header echoes it
        // so the client can correlate the failure.
        let raw_req_id = u64::from_le_bytes(head[4..12].try_into().expect("8 bytes"));
        match decode_header(&head) {
            Ok(h) => {
                let total = HEADER_LEN + h.len as usize;
                if conn.inbuf.len() < total {
                    break; // wait for the rest of the payload
                }
                let payload = conn.inbuf[HEADER_LEN..total].to_vec();
                conn.inbuf.drain(..total);
                NetCounters::bump(&counters.frames_in);
                progressed = true;
                admit(conn, queue, counters, budget, h.opcode, h.req_id, payload);
            }
            Err(FrameError::UnknownOpcode(b)) => {
                // Magic, version, and length all validated — the frame
                // boundary is trustworthy, so skip exactly this frame
                // and keep the connection.
                let len = u32::from_le_bytes(head[12..16].try_into().expect("4 bytes"));
                if len > MAX_FRAME_LEN {
                    protocol_error(
                        conn,
                        counters,
                        raw_req_id,
                        &FrameError::Oversized(len).to_string(),
                    );
                    break;
                }
                let total = HEADER_LEN + len as usize;
                if conn.inbuf.len() < total {
                    break;
                }
                conn.inbuf.drain(..total);
                NetCounters::bump(&counters.frames_in);
                progressed = true;
                NetCounters::bump(&counters.errors_malformed);
                conn.shared.enqueue_reply(
                    counters,
                    encode_frame(
                        Opcode::Error,
                        raw_req_id,
                        &encode_error_payload(
                            ErrorCode::UnknownOpcode,
                            &format!("unknown opcode 0x{b:02x}"),
                        ),
                    ),
                );
            }
            Err(e) => {
                // Bad magic/version/length: the framing itself is no
                // longer trustworthy. Answer once, then close.
                protocol_error(conn, counters, raw_req_id, &e.to_string());
                break;
            }
        }
    }

    // Move finished replies into the write buffer and flush.
    if conn.write_pos >= conn.write_buf.len() {
        conn.write_buf.clear();
        conn.write_pos = 0;
        let mut outbox = conn.shared.outbox.lock().unwrap_or_else(|p| p.into_inner());
        while let Some(frame) = outbox.pop_front() {
            conn.write_buf.extend_from_slice(&frame);
        }
    }
    while !conn.dead && conn.write_pos < conn.write_buf.len() {
        match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
            Ok(0) => {
                conn.dead = true;
            }
            Ok(n) => {
                conn.write_pos += n;
                progressed = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => conn.dead = true,
        }
    }

    progressed
}

/// The two-gate admission decision for one complete request frame.
fn admit(
    conn: &mut Conn,
    queue: &Arc<BoundedQueue<NetJob>>,
    counters: &NetCounters,
    budget: usize,
    opcode: Opcode,
    req_id: u64,
    payload: Vec<u8>,
) {
    // Gate 1: the connection's own budget.
    if conn.shared.in_flight.load(Ordering::Acquire) >= budget {
        NetCounters::bump(&counters.shed_inflight);
        conn.shared.enqueue_reply(
            counters,
            encode_frame(Opcode::Busy, req_id, &encode_busy_payload(BusyReason::InflightBudget)),
        );
        return;
    }
    conn.shared.in_flight.fetch_add(1, Ordering::AcqRel);
    // Gate 2: the server-wide dispatch queue.
    let job = NetJob { conn: Arc::clone(&conn.shared), opcode, req_id, payload };
    match queue.try_push(job) {
        Ok(()) => {}
        Err(TryPushError::Full(job)) => {
            job.conn.in_flight.fetch_sub(1, Ordering::AcqRel);
            NetCounters::bump(&counters.shed_queue);
            conn.shared.enqueue_reply(
                counters,
                encode_frame(Opcode::Busy, req_id, &encode_busy_payload(BusyReason::QueueFull)),
            );
        }
        Err(TryPushError::Closed(job)) => {
            job.conn.in_flight.fetch_sub(1, Ordering::AcqRel);
            NetCounters::bump(&counters.errors_internal);
            conn.shared.enqueue_reply(
                counters,
                encode_frame(
                    Opcode::Error,
                    req_id,
                    &encode_error_payload(ErrorCode::Internal, "server shutting down"),
                ),
            );
        }
    }
}

/// Answers a broken envelope with `Error(Protocol)` and schedules the
/// connection for close-after-flush (the framing is untrustworthy, so
/// no further bytes are parsed).
fn protocol_error(conn: &mut Conn, counters: &NetCounters, req_id: u64, msg: &str) {
    NetCounters::bump(&counters.errors_protocol);
    conn.shared.enqueue_reply(
        counters,
        encode_frame(Opcode::Error, req_id, &encode_error_payload(ErrorCode::Protocol, msg)),
    );
    conn.inbuf.clear();
    conn.close_after_flush = true;
}
