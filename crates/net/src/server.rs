//! The TCP front-end itself (DESIGN.md §9.3–§9.4, §9.6).
//!
//! One I/O thread owns the listener and every connection: it accepts,
//! reads bytes into per-connection buffers, cuts complete frames, runs
//! **admission control**, and drains per-connection outboxes back to
//! the sockets. Decoding and execution happen on a pool of dispatch
//! workers fed through the serve layer's [`BoundedQueue`] — the same
//! MPMC primitive the shards' own worker pools use.
//!
//! ## The zero-copy wire path (DESIGN.md §9.6)
//!
//! At steady state a request crosses the server with no allocator
//! traffic and a single payload copy (socket → `inbuf`):
//!
//! * Inbound frames are parsed **in place**: the connection's
//!   [`RecvBuf`] hands out borrowed payload slices, and consumed frames
//!   advance a cursor instead of shifting the tail per parse.
//! * Reply frames are built **once**, header and payload together, in a
//!   buffer from the shared [`BufPool`] free list
//!   ([`begin_frame`]/`encode_*_into`/[`finish_frame`]), queued as-is,
//!   flushed with one `write_vectored` syscall per batch, and recycled
//!   back to the pool the moment the kernel has taken their last byte.
//! * Cheap requests skip the dispatch queue entirely: the I/O thread
//!   answers `Ping`/`Stats` and *cache-hit-only* `Query`/`Summarize`
//!   **inline** (see [`try_fastpath`]) — every probe is a `try_` lock
//!   or a cache lookup, so the reactor can never block, and a
//!   per-read-pass inline budget keeps one pipelined burst from
//!   starving other connections.
//!
//! ## Readiness
//!
//! *When* the I/O thread runs is the [`Reactor`]'s business
//! (DESIGN.md §9.4): on Linux an epoll instance reports exactly which
//! sockets have bytes (or, while an outbox has unflushed replies,
//! room), and an eventfd **doorbell** rung by the dispatch workers
//! wakes the thread the moment a reply lands — round-trip latency is
//! bounded by work, not by a sleep constant. The portable fallback
//! (`ReactorChoice::Poll`) is PR 7's sweep loop behind the same trait,
//! retained as a differential oracle; every net suite runs against
//! both.
//!
//! Connections live in a **slab** indexed by their reactor token, so
//! an event maps to its connection without hashing, and tokens recycle
//! through a free list as peers come and go.
//!
//! ## Backpressure and shedding
//!
//! Three gates bound the work (and memory) a client can park in the
//! server, and all reject with an explicit [`Opcode::Busy`] reply — a
//! shed request is *never* silently dropped, and it is rejected
//! **before** execution, so it has no partial effects:
//!
//! 1. **Per-connection in-flight budget** (`NetConfig::inflight_budget`):
//!    admitted-but-unanswered requests per connection. One greedy
//!    pipeliner saturates its own budget, not the server.
//! 2. **Per-connection outbox byte cap** (`NetConfig::outbox_cap_bytes`):
//!    encoded-but-unflushed reply bytes. A peer that stops *reading*
//!    (while its kernel buffers are full) cannot grow server memory
//!    without bound — once the cap is hit, further requests shed with
//!    `Busy(OutboxFull)` until the outbox drains. The inline fast path
//!    honors the same cap (it declines and lets admission shed).
//! 3. **Dispatch queue capacity** (`NetConfig::queue_capacity`): the
//!    server-wide bound, enforced by [`BoundedQueue::try_push`] — the
//!    I/O thread never blocks on a full queue.
//!
//! Idle peers are bounded too: with `NetConfig::idle_timeout` set, a
//! connection that completes no frame for the window — and has nothing
//! in flight or unflushed — is closed on the reactor's sweep tick.
//!
//! ## Panic containment
//!
//! Every request executes under `catch_unwind`: a handler panic becomes
//! an `Error(Internal)` reply on that request and the worker moves on.
//! Combined with the poison-recovering locks underneath (serve queue,
//! cache shards, hot sketch, cluster gate), one bad request degrades
//! one reply — it cannot take down the connection, the worker pool, or
//! the shared serving state.

use std::collections::VecDeque;
use std::io::{self, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sizel_cluster::ClusterRouter;
use sizel_serve::{BoundedQueue, TryPushError};

use crate::buf::BufPool;
use crate::frame::{
    begin_frame, decode_header, finish_frame, BusyReason, ErrorCode, FrameError, Opcode,
    HEADER_LEN, MAX_FRAME_LEN,
};
use crate::metrics::{render_http_metrics, render_metrics, NetCounters};
use crate::reactor::{
    build_reactor, Event, Reactor, ReactorChoice, ReactorKind, WakeHub, TOKEN_BASE, TOKEN_LISTENER,
};
use crate::wire::{
    decode_request, encode_applied_into, encode_busy_into, encode_error_into, encode_results_into,
    encode_stats_into, encode_summary_into, Request,
};

#[cfg(unix)]
use std::os::fd::AsRawFd;

/// Front-end construction parameters.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Dispatch worker threads (decode + execute + encode).
    pub dispatch_workers: usize,
    /// Server-wide dispatch queue bound; overflow sheds with
    /// `Busy(QueueFull)`.
    pub queue_capacity: usize,
    /// Per-connection cap on admitted-but-unanswered requests; overflow
    /// sheds with `Busy(InflightBudget)`.
    pub inflight_budget: usize,
    /// Per-connection cap on encoded-but-unflushed reply bytes; while
    /// exceeded, new requests shed with `Busy(OutboxFull)` (the
    /// slow-reader gate).
    pub outbox_cap_bytes: usize,
    /// Close a connection that completes no frame for this window (and
    /// has nothing in flight or unflushed). `None` disables reaping.
    pub idle_timeout: Option<Duration>,
    /// Readiness backend; `Auto` resolves `SIZEL_NET_REACTOR` then the
    /// platform default (epoll on Linux, the sweep loop elsewhere).
    pub reactor: ReactorChoice,
    /// Test/bench hook: every dispatch worker sleeps this long before
    /// executing a request, making queue/budget saturation deterministic
    /// on any machine. `None` (the default) in production. Setting it
    /// also disables the inline fast path: the delay declares every
    /// request expensive, and the fast path exists precisely to skip
    /// execution that costs nothing.
    pub handler_delay: Option<Duration>,
    /// Answer `Ping`/`Stats` and cache-hit `Query`/`Summarize` inline on
    /// the I/O thread instead of dispatching (see [`try_fastpath`]).
    pub fastpath: bool,
    /// Inline replies per connection per read pass; beyond it, requests
    /// take the dispatch queue so one pipelined burst cannot starve
    /// other connections of the I/O thread.
    pub fastpath_budget: usize,
    /// Pre-size hint for per-connection receive buffers and pooled frame
    /// buffers.
    pub initial_buf_bytes: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            dispatch_workers: 2,
            queue_capacity: 64,
            inflight_budget: 32,
            outbox_cap_bytes: 16 * 1024 * 1024,
            idle_timeout: None,
            reactor: ReactorChoice::Auto,
            handler_delay: None,
            fastpath: true,
            fastpath_budget: 32,
            initial_buf_bytes: 4096,
        }
    }
}

/// State shared between the I/O thread and dispatch workers for one
/// connection.
struct ConnShared {
    /// Encoded reply frames awaiting the I/O thread's next write pass.
    outbox: Mutex<VecDeque<Vec<u8>>>,
    /// Bytes currently queued in `outbox` (the outbox gate reads this
    /// without taking the lock).
    outbox_bytes: AtomicUsize,
    /// Admitted-but-unanswered requests (the budget gate's counter).
    in_flight: AtomicUsize,
    /// This connection's reactor token (names it in doorbell
    /// completions).
    token: usize,
    /// The doorbell back to the I/O thread.
    hub: Arc<WakeHub>,
}

impl ConnShared {
    /// Appends one encoded frame to the outbox (bytes accounted, no
    /// doorbell — the I/O thread's own paths flush in the same pass).
    fn push_frame(&self, frame: Vec<u8>) {
        self.outbox_bytes.fetch_add(frame.len(), Ordering::Relaxed);
        self.outbox.lock().unwrap_or_else(|p| p.into_inner()).push_back(frame);
    }

    /// Queues one encoded reply frame from the I/O thread itself.
    fn enqueue_reply_local(&self, counters: &NetCounters, frame: Vec<u8>) {
        self.push_frame(frame);
        NetCounters::bump(&counters.frames_out);
    }

    /// Queues one encoded reply frame from a dispatch worker and rings
    /// the doorbell so the I/O thread flushes it now, not on its next
    /// sweep.
    fn enqueue_reply(&self, counters: &NetCounters, frame: Vec<u8>) {
        self.push_frame(frame);
        NetCounters::bump(&counters.frames_out);
        self.hub.notify(self.token);
    }
}

/// One admitted request travelling to the dispatch pool. The payload
/// buffer comes from (and returns to) the [`BufPool`].
struct NetJob {
    conn: Arc<ConnShared>,
    opcode: Opcode,
    req_id: u64,
    payload: Vec<u8>,
}

/// The per-connection receive buffer: consumed frames advance a cursor
/// (O(1)) instead of draining the vector's front (O(remaining bytes)
/// per frame); the consumed prefix is dropped at most **once per read
/// pass**, when the next socket read appends.
struct RecvBuf {
    buf: Vec<u8>,
    /// Bytes before this offset are consumed.
    start: usize,
}

impl RecvBuf {
    fn with_capacity(cap: usize) -> Self {
        RecvBuf { buf: Vec::with_capacity(cap), start: 0 }
    }

    /// The received-but-unparsed bytes.
    fn data(&self) -> &[u8] {
        &self.buf[self.start..]
    }

    fn len(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Marks `n` leading bytes consumed — constant-time; no bytes move.
    fn consume(&mut self, n: usize) {
        self.start += n;
        debug_assert!(self.start <= self.buf.len());
        if self.start == self.buf.len() {
            // Fully caught up (the steady state): rewind for free.
            self.buf.clear();
            self.start = 0;
        }
    }

    /// Appends freshly read bytes, compacting the consumed prefix first
    /// — one memmove per read pass, however many frames were parsed.
    fn extend(&mut self, bytes: &[u8]) {
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    fn clear(&mut self) {
        self.buf.clear();
        self.start = 0;
    }
}

/// Per-connection state owned by the I/O thread.
struct Conn {
    stream: TcpStream,
    shared: Arc<ConnShared>,
    /// Received-but-unparsed bytes.
    inbuf: RecvBuf,
    /// Frames pulled from the outbox, awaiting the kernel. The front
    /// frame is written from `wq_off`; fully written frames recycle to
    /// the pool.
    wq: VecDeque<Vec<u8>>,
    wq_off: usize,
    /// Total unwritten bytes across `wq` (the outbox gate reads this
    /// plus `outbox_bytes`).
    wq_unwritten: usize,
    /// Peer hung up or the stream failed.
    dead: bool,
    /// Stop reading/parsing; flush the outbox and close. Set by
    /// protocol errors and by the HTTP scrape path.
    close_after_flush: bool,
    /// The connection turned out to be a plain-HTTP scraper.
    http: bool,
    /// Write-readiness interest currently registered with the reactor
    /// (on only while reply bytes are unflushed).
    want_write: bool,
    /// When the last complete frame was cut (idle reaping's clock;
    /// starts at accept).
    last_frame: Instant,
}

impl Conn {
    /// Reply bytes not yet handed to the kernel: queued outbox frames
    /// plus the unwritten tail of the write queue — what the outbox
    /// gate compares against the cap.
    fn unflushed_bytes(&self) -> usize {
        self.shared.outbox_bytes.load(Ordering::Relaxed) + self.wq_unwritten
    }
}

/// Immutable per-server knobs the I/O thread reads each pass.
struct IoOpts {
    budget: usize,
    outbox_cap: usize,
    idle_timeout: Option<Duration>,
    fastpath: bool,
    fastpath_budget: usize,
    initial_buf: usize,
}

/// The running front-end. Dropping it stops the I/O thread, closes the
/// dispatch queue, and joins every worker.
pub struct NetServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    queue: Arc<BoundedQueue<NetJob>>,
    counters: Arc<NetCounters>,
    router: Arc<ClusterRouter>,
    hub: Arc<WakeHub>,
    kind: ReactorKind,
    io_handle: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl NetServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving `router` over it.
    pub fn bind(router: Arc<ClusterRouter>, addr: &str, cfg: NetConfig) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(BoundedQueue::new(cfg.queue_capacity.max(1)));
        let counters = Arc::new(NetCounters::default());
        let pool = Arc::new(BufPool::new(cfg.initial_buf_bytes.max(64), Arc::clone(&counters)));
        let reactor = build_reactor(cfg.reactor, &counters)?;
        let kind = reactor.kind();
        counters.reactor_backend.store(kind as u8, Ordering::Relaxed);
        let hub = Arc::clone(reactor.hub());

        let workers = (0..cfg.dispatch_workers.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                let router = Arc::clone(&router);
                let counters = Arc::clone(&counters);
                let pool = Arc::clone(&pool);
                let delay = cfg.handler_delay;
                std::thread::Builder::new()
                    .name(format!("sizel-net-worker-{i}"))
                    .spawn(move || worker_loop(&queue, &router, &counters, &pool, delay))
                    .expect("spawn net worker")
            })
            .collect();

        let io_handle = {
            let shutdown = Arc::clone(&shutdown);
            let queue = Arc::clone(&queue);
            let router = Arc::clone(&router);
            let counters = Arc::clone(&counters);
            let opts = IoOpts {
                budget: cfg.inflight_budget.max(1),
                outbox_cap: cfg.outbox_cap_bytes.max(1),
                idle_timeout: cfg.idle_timeout,
                // handler_delay declares request execution expensive (the
                // saturation suites' knob); the fast path exists to skip
                // execution that costs nothing, so it stands down — this
                // is what keeps the delay-driven shedding tests exact.
                fastpath: cfg.fastpath && cfg.handler_delay.is_none(),
                fastpath_budget: cfg.fastpath_budget.max(1),
                initial_buf: cfg.initial_buf_bytes.max(64),
            };
            std::thread::Builder::new()
                .name("sizel-net-io".into())
                .spawn(move || {
                    io_loop(listener, &shutdown, &queue, &router, &counters, &pool, &opts, reactor)
                })
                .expect("spawn net io thread")
        };

        Ok(NetServer {
            addr: local,
            shutdown,
            queue,
            counters,
            router,
            hub,
            kind,
            io_handle: Some(io_handle),
            workers,
        })
    }

    /// The bound address (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The front-end's live counters.
    pub fn counters(&self) -> &NetCounters {
        &self.counters
    }

    /// The served cluster (for in-process oracles in tests/benches).
    pub fn router(&self) -> &Arc<ClusterRouter> {
        &self.router
    }

    /// Which readiness backend the I/O thread is running on.
    pub fn reactor_kind(&self) -> ReactorKind {
        self.kind
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        // The I/O thread may be parked in the reactor: ring it out.
        self.hub.ring();
        self.queue.close();
        if let Some(h) = self.io_handle.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------
// Dispatch workers
// ---------------------------------------------------------------------

fn worker_loop(
    queue: &BoundedQueue<NetJob>,
    router: &ClusterRouter,
    counters: &NetCounters,
    pool: &BufPool,
    delay: Option<Duration>,
) {
    while let Some(job) = queue.pop() {
        if let Some(d) = delay {
            std::thread::sleep(d);
        }
        let NetJob { conn, opcode, req_id, payload } = job;
        // The reply frame is built in one pooled buffer: header first
        // (placeholder opcode — the real one is known only after the
        // handler runs), payload appended in place, then sealed.
        let mut frame = pool.acquire();
        begin_frame(&mut frame, Opcode::Error, req_id);
        // A panicking handler must cost exactly one reply: catch it,
        // answer Error(Internal), move to the next job. The state the
        // panic touched recovers via the poison-safe locks underneath.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            handle_request_into(router, counters, opcode, &payload, &mut frame)
        }));
        let reply_op = match outcome {
            Ok(op) => op,
            Err(panic) => {
                NetCounters::bump(&counters.errors_internal);
                let msg = panic_message(&panic);
                // The handler may have died mid-encode: keep the header,
                // drop whatever partial payload it left.
                frame.truncate(HEADER_LEN);
                encode_error_into(&mut frame, ErrorCode::Internal, &msg);
                Opcode::Error
            }
        };
        finish_frame(&mut frame, reply_op);
        pool.release(payload);
        conn.enqueue_reply(counters, frame);
        // Budget release strictly after the reply is visible to the
        // flusher, so close-after-flush never races a missing reply.
        conn.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("handler panicked: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("handler panicked: {s}")
    } else {
        "handler panicked".to_owned()
    }
}

fn bad_request_into(counters: &NetCounters, out: &mut Vec<u8>, msg: &str) -> Opcode {
    NetCounters::bump(&counters.errors_bad_request);
    encode_error_into(out, ErrorCode::BadRequest, msg);
    Opcode::Error
}

/// Decodes and executes one request, appending the reply payload to
/// `out` (which already holds the frame header) and returning the reply
/// opcode for [`finish_frame`] to stamp.
fn handle_request_into(
    router: &ClusterRouter,
    counters: &NetCounters,
    opcode: Opcode,
    payload: &[u8],
    out: &mut Vec<u8>,
) -> Opcode {
    let request = match decode_request(opcode, payload) {
        Ok(r) => r,
        Err(e) => {
            NetCounters::bump(&counters.errors_malformed);
            encode_error_into(out, ErrorCode::MalformedPayload, &e.to_string());
            return Opcode::Error;
        }
    };
    match request {
        Request::Ping => Opcode::Pong,
        Request::Stats => {
            encode_stats_into(out, &render_metrics(counters, router));
            Opcode::StatsText
        }
        Request::Query { requests } => match router.batch_query_at(&requests) {
            Ok((epoch, results)) => {
                encode_results_into(out, epoch, &results);
                Opcode::Results
            }
            Err(e) => bad_request_into(counters, out, &e.to_string()),
        },
        Request::Summarize { tds, opts } => match router.summarize_at(tds, opts) {
            Ok((epoch, result)) => {
                encode_summary_into(out, epoch, &result);
                Opcode::Summary
            }
            Err(e) => bad_request_into(counters, out, &e.to_string()),
        },
        Request::ApplyBatch { mutations } => match router.apply_batch(mutations) {
            Ok(epoch) => {
                encode_applied_into(out, epoch);
                Opcode::Applied
            }
            Err(e) => bad_request_into(counters, out, &e.to_string()),
        },
    }
}

// ---------------------------------------------------------------------
// The I/O thread
// ---------------------------------------------------------------------

/// Reactor wait bound when no idle timeout asks for a finer sweep tick:
/// a liveness backstop (shutdown and doorbells wake the thread early;
/// this only bounds how stale a missed tick can get).
const SWEEP_TICK: Duration = Duration::from_millis(100);

/// Frames batched into one `write_vectored` call. 64 is comfortably
/// under every platform's `IOV_MAX` (1024 on Linux) and already far
/// past the depth where syscall count stops mattering.
const WRITE_BATCH: usize = 64;

#[allow(clippy::too_many_arguments)]
fn io_loop(
    listener: TcpListener,
    shutdown: &AtomicBool,
    queue: &Arc<BoundedQueue<NetJob>>,
    router: &Arc<ClusterRouter>,
    counters: &NetCounters,
    pool: &Arc<BufPool>,
    opts: &IoOpts,
    mut reactor: Box<dyn Reactor>,
) {
    let hub = Arc::clone(reactor.hub());
    #[cfg(unix)]
    let listener_fd = listener.as_raw_fd();
    #[cfg(not(unix))]
    let listener_fd = -1;
    if reactor.register(listener_fd, TOKEN_LISTENER).is_err() {
        return; // cannot watch the listener: nothing to serve
    }

    // The connection slab: token == index + TOKEN_BASE, holes recycled
    // through the free list.
    let mut slab: Vec<Option<Conn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut events: Vec<Event> = Vec::new();
    let mut completions: Vec<usize> = Vec::new();
    // The sweep tick: reap cadence under epoll (the poll backend sweeps
    // every pass anyway); quartered so an idle peer overstays its
    // window by at most ~25%.
    let tick = match opts.idle_timeout {
        Some(w) => (w / 4).clamp(Duration::from_millis(1), SWEEP_TICK),
        None => SWEEP_TICK,
    };
    let mut progressed = true; // first pass sweeps unconditionally

    loop {
        // Arm-then-recheck handshake (reactor module docs): a worker
        // completion can never slip between the pending check and the
        // wait.
        hub.arm();
        let woke = if shutdown.load(Ordering::Acquire) {
            hub.disarm();
            break;
        } else if hub.has_pending() {
            events.clear();
            true
        } else {
            reactor.wait(&mut events, tick, progressed)
        };
        hub.disarm();
        if shutdown.load(Ordering::Acquire) {
            break;
        }
        progressed = false;

        // Readiness events: the listener accepts, connections move bytes.
        for &ev in &events {
            match ev.token {
                TOKEN_LISTENER => {
                    progressed |= accept_all(
                        &listener,
                        &mut slab,
                        &mut free,
                        reactor.as_mut(),
                        &hub,
                        counters,
                        opts,
                    );
                }
                token => {
                    let idx = token - TOKEN_BASE;
                    if let Some(Some(conn)) = slab.get_mut(idx) {
                        progressed |= poll_conn(
                            conn,
                            ev,
                            reactor.as_mut(),
                            queue,
                            router,
                            counters,
                            pool,
                            opts,
                        );
                    }
                }
            }
        }

        // Doorbell completions: flush exactly the connections whose
        // outboxes just gained replies (tokens may be stale after a
        // close — flushing an empty outbox is a no-op).
        hub.drain_pending(&mut completions);
        for token in completions.drain(..) {
            let idx = token.wrapping_sub(TOKEN_BASE);
            if let Some(Some(conn)) = slab.get_mut(idx) {
                progressed |= flush_conn(conn, reactor.as_mut(), counters, pool);
            }
        }

        if woke {
            NetCounters::bump(if progressed {
                &counters.reactor_wakeups
            } else {
                &counters.reactor_spurious
            });
        }

        reap(&mut slab, &mut free, reactor.as_mut(), counters, opts.idle_timeout);
    }
    // Shutdown: connections drop here, closing their sockets.
}

/// Accepts everything pending on the listener, registering each new
/// connection with the reactor. Returns whether anything was accepted.
fn accept_all(
    listener: &TcpListener,
    slab: &mut Vec<Option<Conn>>,
    free: &mut Vec<usize>,
    reactor: &mut dyn Reactor,
    hub: &Arc<WakeHub>,
    counters: &NetCounters,
    opts: &IoOpts,
) -> bool {
    let mut progressed = false;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(true);
                let _ = stream.set_nodelay(true);
                let idx = free.pop().unwrap_or_else(|| {
                    slab.push(None);
                    slab.len() - 1
                });
                let token = idx + TOKEN_BASE;
                #[cfg(unix)]
                let fd = stream.as_raw_fd();
                #[cfg(not(unix))]
                let fd = -1;
                if reactor.register(fd, token).is_err() {
                    free.push(idx);
                    continue; // stream drops: connection refused late
                }
                NetCounters::bump(&counters.connections_opened);
                NetCounters::bump(&counters.connections_live);
                slab[idx] = Some(Conn {
                    stream,
                    shared: Arc::new(ConnShared {
                        outbox: Mutex::new(VecDeque::new()),
                        outbox_bytes: AtomicUsize::new(0),
                        in_flight: AtomicUsize::new(0),
                        token,
                        hub: Arc::clone(hub),
                    }),
                    inbuf: RecvBuf::with_capacity(opts.initial_buf),
                    wq: VecDeque::new(),
                    wq_off: 0,
                    wq_unwritten: 0,
                    dead: false,
                    close_after_flush: false,
                    http: false,
                    want_write: false,
                    last_frame: Instant::now(),
                });
                progressed = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(_) => break,
        }
    }
    progressed
}

/// Drops every connection that is dead, done with a scheduled close, or
/// idle past the reaping window.
fn reap(
    slab: &mut [Option<Conn>],
    free: &mut Vec<usize>,
    reactor: &mut dyn Reactor,
    counters: &NetCounters,
    idle_timeout: Option<Duration>,
) {
    let now = Instant::now();
    for (idx, slot) in slab.iter_mut().enumerate() {
        let Some(conn) = slot else { continue };
        let done_flushing = conn.wq.is_empty()
            && conn.shared.outbox.lock().unwrap_or_else(|p| p.into_inner()).is_empty()
            && conn.shared.in_flight.load(Ordering::Acquire) == 0;
        let mut drop_it = conn.dead || (conn.close_after_flush && done_flushing);
        // Idle reaping: no complete frame for the window AND nothing of
        // ours still owed to the peer — a connection waiting on its own
        // pipelined replies is busy, not idle.
        if !drop_it {
            if let Some(window) = idle_timeout {
                if done_flushing && now.duration_since(conn.last_frame) >= window {
                    NetCounters::bump(&counters.idle_reaped);
                    drop_it = true;
                }
            }
        }
        if drop_it {
            #[cfg(unix)]
            let fd = conn.stream.as_raw_fd();
            #[cfg(not(unix))]
            let fd = -1;
            reactor.deregister(fd, idx + TOKEN_BASE);
            counters.connections_live.fetch_sub(1, Ordering::Relaxed);
            *slot = None;
            free.push(idx);
        }
    }
}

/// One readiness-driven pass over a connection: read to `WouldBlock`,
/// parse/admit every complete frame (answering cheap ones inline),
/// flush. Returns whether any bytes moved.
#[allow(clippy::too_many_arguments)]
fn poll_conn(
    conn: &mut Conn,
    ev: Event,
    reactor: &mut dyn Reactor,
    queue: &Arc<BoundedQueue<NetJob>>,
    router: &Arc<ClusterRouter>,
    counters: &NetCounters,
    pool: &BufPool,
    opts: &IoOpts,
) -> bool {
    let mut progressed = false;

    // Read whatever the socket has.
    if ev.readable && !conn.dead && !conn.close_after_flush {
        let mut chunk = [0u8; 4096];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.dead = true;
                    break;
                }
                Ok(n) => {
                    conn.inbuf.extend(&chunk[..n]);
                    progressed = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
    }

    // A plain-HTTP scraper? The frame magic is "LS"; an ASCII "GET "
    // can't be a frame, so the first four octets decide once.
    if !conn.http
        && !conn.close_after_flush
        && conn.inbuf.len() >= 4
        && &conn.inbuf.data()[..4] == b"GET "
    {
        conn.http = true;
        conn.close_after_flush = true;
        NetCounters::bump(&counters.http_scrapes);
        conn.shared.push_frame(render_http_metrics(counters, router));
        conn.inbuf.clear();
    }

    // The fairness budget: inline replies this pass. When it runs out,
    // further eligible requests take the dispatch queue like everything
    // else, returning the I/O thread to other connections.
    let mut inline_budget = opts.fastpath_budget;

    // Cut complete frames and run admission.
    while !conn.http && !conn.close_after_flush && conn.inbuf.len() >= HEADER_LEN {
        let head: [u8; HEADER_LEN] = conn.inbuf.data()[..HEADER_LEN].try_into().expect("16 bytes");
        // The id is at a fixed offset; even a rejected header echoes it
        // so the client can correlate the failure.
        let raw_req_id = u64::from_le_bytes(head[4..12].try_into().expect("8 bytes"));
        match decode_header(&head) {
            Ok(h) => {
                let total = HEADER_LEN + h.len as usize;
                if conn.inbuf.len() < total {
                    break; // wait for the rest of the payload
                }
                NetCounters::bump(&counters.frames_in);
                progressed = true;
                conn.last_frame = Instant::now();
                {
                    // Borrowed straight from the receive buffer: the
                    // fast path decodes it in place; only a queued
                    // dispatch copies it (into a pooled buffer).
                    let payload = &conn.inbuf.data()[HEADER_LEN..total];
                    let eligible = opts.fastpath
                        && matches!(
                            h.opcode,
                            Opcode::Ping | Opcode::Stats | Opcode::Query | Opcode::Summarize
                        );
                    let inlined = eligible
                        && inline_budget > 0
                        && try_fastpath(
                            conn, router, counters, pool, opts, h.opcode, h.req_id, payload,
                        );
                    if inlined {
                        NetCounters::bump(&counters.fastpath_hits);
                        inline_budget -= 1;
                    } else {
                        if eligible {
                            NetCounters::bump(&counters.fastpath_fallbacks);
                        }
                        admit(conn, queue, counters, pool, opts, h.opcode, h.req_id, payload);
                    }
                }
                conn.inbuf.consume(total);
            }
            Err(FrameError::UnknownOpcode(b)) => {
                // Magic, version, and length all validated — the frame
                // boundary is trustworthy, so skip exactly this frame
                // and keep the connection.
                let len = u32::from_le_bytes(head[12..16].try_into().expect("4 bytes"));
                if len > MAX_FRAME_LEN {
                    protocol_error(
                        conn,
                        counters,
                        pool,
                        raw_req_id,
                        &FrameError::Oversized(len).to_string(),
                    );
                    break;
                }
                let total = HEADER_LEN + len as usize;
                if conn.inbuf.len() < total {
                    break;
                }
                conn.inbuf.consume(total);
                NetCounters::bump(&counters.frames_in);
                progressed = true;
                conn.last_frame = Instant::now();
                NetCounters::bump(&counters.errors_malformed);
                let frame = pooled_frame(pool, Opcode::Error, raw_req_id, |out| {
                    encode_error_into(
                        out,
                        ErrorCode::UnknownOpcode,
                        &format!("unknown opcode 0x{b:02x}"),
                    )
                });
                conn.shared.enqueue_reply_local(counters, frame);
            }
            Err(e) => {
                // Bad magic/version/length: the framing itself is no
                // longer trustworthy. Answer once, then close.
                protocol_error(conn, counters, pool, raw_req_id, &e.to_string());
                break;
            }
        }
    }

    // Flush when this pass produced replies (inline answers, sheds,
    // errors, the HTTP page) or the reactor reported room for a blocked
    // write; a pure read event with nothing parsed has nothing to write.
    if progressed || ev.writable {
        progressed |= flush_conn(conn, reactor, counters, pool);
    }
    progressed
}

/// Builds one complete reply frame in a pooled buffer.
fn pooled_frame(
    pool: &BufPool,
    opcode: Opcode,
    req_id: u64,
    write: impl FnOnce(&mut Vec<u8>),
) -> Vec<u8> {
    let mut buf = pool.acquire();
    begin_frame(&mut buf, opcode, req_id);
    write(&mut buf);
    finish_frame(&mut buf, opcode);
    buf
}

/// The I/O-thread inline fast path: answers a request without touching
/// the dispatch queue **iff** doing so cannot block and cannot compute.
/// `Ping`/`Stats` are pure; `Query`/`Summarize` are served only when
/// the cluster's cache-only probe ([`ClusterRouter::try_batch_query_cached`])
/// succeeds outright — any lock contention or cache miss returns
/// `false` and the request dispatches normally. Replies are
/// byte-identical to the queued path's by construction: same decode,
/// same epoch-gated lookup, same encoder.
///
/// The reactor-never-blocks argument, gate by gate: the outbox check is
/// an atomic read; `Ping`/`Stats` touch no locks (the stats renderer
/// reads atomics); the cluster probes use `try_read` on the gate and
/// engine locks and bounded per-shard cache lookups — every failure
/// path is "return `None`", never "wait".
#[allow(clippy::too_many_arguments)]
fn try_fastpath(
    conn: &Conn,
    router: &ClusterRouter,
    counters: &NetCounters,
    pool: &BufPool,
    opts: &IoOpts,
    opcode: Opcode,
    req_id: u64,
    payload: &[u8],
) -> bool {
    // The slow-reader gate applies to inline replies too: past the cap,
    // decline so admission sheds with `Busy(OutboxFull)` as always.
    if conn.unflushed_bytes() >= opts.outbox_cap {
        return false;
    }
    match opcode {
        Opcode::Ping => {
            // A non-empty Ping payload is malformed; the queued path
            // owns that reply so the bytes stay identical.
            if !payload.is_empty() {
                return false;
            }
            let frame = pooled_frame(pool, Opcode::Pong, req_id, |_| {});
            conn.shared.enqueue_reply_local(counters, frame);
            true
        }
        Opcode::Stats => {
            if !payload.is_empty() {
                return false;
            }
            let frame = pooled_frame(pool, Opcode::StatsText, req_id, |out| {
                encode_stats_into(out, &render_metrics(counters, router))
            });
            conn.shared.enqueue_reply_local(counters, frame);
            true
        }
        Opcode::Query => {
            let Ok(Request::Query { requests }) = decode_request(opcode, payload) else {
                return false; // malformed: the queued path answers it identically
            };
            let Some((epoch, results)) = router.try_batch_query_cached(&requests) else {
                return false;
            };
            let frame = pooled_frame(pool, Opcode::Results, req_id, |out| {
                encode_results_into(out, epoch, &results)
            });
            conn.shared.enqueue_reply_local(counters, frame);
            true
        }
        Opcode::Summarize => {
            let Ok(Request::Summarize { tds, opts: qopts }) = decode_request(opcode, payload)
            else {
                return false;
            };
            let Some((epoch, result)) = router.try_summarize_cached_at(tds, qopts) else {
                return false;
            };
            let frame = pooled_frame(pool, Opcode::Summary, req_id, |out| {
                encode_summary_into(out, epoch, &result)
            });
            conn.shared.enqueue_reply_local(counters, frame);
            true
        }
        _ => false,
    }
}

/// Moves finished reply frames from the outbox into the write queue and
/// hands them to the kernel in `write_vectored` batches — frames move
/// by pointer, never re-copied into a staging buffer, and each fully
/// written frame recycles straight back to the [`BufPool`]. EPOLLOUT
/// interest stays registered exactly while bytes remain unflushed (so a
/// partial write resumes on writability, not on the next sweep).
/// Returns whether any bytes moved.
fn flush_conn(
    conn: &mut Conn,
    reactor: &mut dyn Reactor,
    counters: &NetCounters,
    pool: &BufPool,
) -> bool {
    let mut progressed = false;
    loop {
        // Pull everything the workers have finished since the last pull
        // (frames move, not bytes).
        {
            let mut outbox = conn.shared.outbox.lock().unwrap_or_else(|p| p.into_inner());
            let mut moved = 0usize;
            while let Some(frame) = outbox.pop_front() {
                moved += frame.len();
                conn.wq_unwritten += frame.len();
                conn.wq.push_back(frame);
            }
            drop(outbox);
            conn.shared.outbox_bytes.fetch_sub(moved, Ordering::Relaxed);
        }
        if conn.wq.is_empty() {
            break; // fully drained
        }
        let mut blocked = false;
        while !conn.dead && !conn.wq.is_empty() {
            // Gather up to WRITE_BATCH frames into one vectored write
            // (the front frame resumes from its partial-write offset).
            let mut slices = [IoSlice::new(&[]); WRITE_BATCH];
            let mut n_slices = 0;
            for (i, frame) in conn.wq.iter().take(WRITE_BATCH).enumerate() {
                slices[n_slices] = IoSlice::new(if i == 0 { &frame[conn.wq_off..] } else { frame });
                n_slices += 1;
            }
            match conn.stream.write_vectored(&slices[..n_slices]) {
                Ok(0) => conn.dead = true,
                Ok(mut n) => {
                    progressed = true;
                    conn.wq_unwritten -= n;
                    // Advance across frame boundaries, recycling every
                    // frame the kernel has wholly taken.
                    while n > 0 {
                        let front_left =
                            conn.wq.front().expect("bytes written imply a frame").len()
                                - conn.wq_off;
                        if n >= front_left {
                            n -= front_left;
                            conn.wq_off = 0;
                            pool.release(conn.wq.pop_front().expect("front exists"));
                        } else {
                            conn.wq_off += n;
                            n = 0;
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    blocked = true;
                    break;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => conn.dead = true,
            }
        }
        if blocked || conn.dead {
            break;
        }
        // Loop: a worker may have landed more frames while we wrote.
    }

    // EPOLLOUT toggling: interest on iff the kernel couldn't take
    // everything (no-op on the poll backend, which always sweeps).
    let want = !conn.dead && !conn.wq.is_empty();
    if want != conn.want_write {
        #[cfg(unix)]
        let fd = conn.stream.as_raw_fd();
        #[cfg(not(unix))]
        let fd = -1;
        if reactor.set_writable(fd, conn.shared.token, want).is_ok() {
            conn.want_write = want;
        }
        NetCounters::bump(&counters.epollout_toggles);
    }
    progressed
}

/// The three-gate admission decision for one complete request frame.
/// The payload is still borrowed from the receive buffer here: the
/// gates run first, and only an actually-admitted request pays the copy
/// into a pooled dispatch buffer.
#[allow(clippy::too_many_arguments)]
fn admit(
    conn: &Conn,
    queue: &Arc<BoundedQueue<NetJob>>,
    counters: &NetCounters,
    pool: &BufPool,
    opts: &IoOpts,
    opcode: Opcode,
    req_id: u64,
    payload: &[u8],
) {
    // Gate 1: the connection's own in-flight budget.
    if conn.shared.in_flight.load(Ordering::Acquire) >= opts.budget {
        NetCounters::bump(&counters.shed_inflight);
        let frame = pooled_frame(pool, Opcode::Busy, req_id, |out| {
            encode_busy_into(out, BusyReason::InflightBudget)
        });
        conn.shared.enqueue_reply_local(counters, frame);
        return;
    }
    // Gate 2: the connection's unflushed reply bytes — a peer that has
    // stopped reading must not grow server memory without bound. The
    // `Busy` reply itself is queued (small, and bounded by the peer's
    // own send rate), so the shed is still never silent.
    if conn.unflushed_bytes() >= opts.outbox_cap {
        NetCounters::bump(&counters.shed_outbox);
        let frame = pooled_frame(pool, Opcode::Busy, req_id, |out| {
            encode_busy_into(out, BusyReason::OutboxFull)
        });
        conn.shared.enqueue_reply_local(counters, frame);
        return;
    }
    conn.shared.in_flight.fetch_add(1, Ordering::AcqRel);
    // Gate 3: the server-wide dispatch queue. The payload copy is the
    // request's only one past the socket read, and it lands in a pooled
    // buffer — at steady state extend_from_slice into recycled capacity.
    let mut owned = pool.acquire();
    owned.extend_from_slice(payload);
    let job = NetJob { conn: Arc::clone(&conn.shared), opcode, req_id, payload: owned };
    match queue.try_push(job) {
        Ok(()) => {}
        Err(TryPushError::Full(job)) => {
            job.conn.in_flight.fetch_sub(1, Ordering::AcqRel);
            pool.release(job.payload);
            NetCounters::bump(&counters.shed_queue);
            let frame = pooled_frame(pool, Opcode::Busy, req_id, |out| {
                encode_busy_into(out, BusyReason::QueueFull)
            });
            conn.shared.enqueue_reply_local(counters, frame);
        }
        Err(TryPushError::Closed(job)) => {
            job.conn.in_flight.fetch_sub(1, Ordering::AcqRel);
            pool.release(job.payload);
            NetCounters::bump(&counters.errors_internal);
            let frame = pooled_frame(pool, Opcode::Error, req_id, |out| {
                encode_error_into(out, ErrorCode::Internal, "server shutting down")
            });
            conn.shared.enqueue_reply_local(counters, frame);
        }
    }
}

/// Answers a broken envelope with `Error(Protocol)` and schedules the
/// connection for close-after-flush (the framing is untrustworthy, so
/// no further bytes are parsed).
fn protocol_error(conn: &mut Conn, counters: &NetCounters, pool: &BufPool, req_id: u64, msg: &str) {
    NetCounters::bump(&counters.errors_protocol);
    let frame = pooled_frame(pool, Opcode::Error, req_id, |out| {
        encode_error_into(out, ErrorCode::Protocol, msg)
    });
    conn.shared.enqueue_reply_local(counters, frame);
    conn.inbuf.clear();
    conn.close_after_flush = true;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recv_buf_consumes_in_constant_time_and_compacts_on_extend() {
        let mut rb = RecvBuf::with_capacity(64);
        rb.extend(b"aaaabbbbcccc");
        assert_eq!(rb.len(), 12);
        rb.consume(4);
        assert_eq!(rb.data(), b"bbbbcccc");
        // Consuming advanced the cursor; the bytes did not move.
        assert_eq!(rb.start, 4);
        rb.consume(4);
        assert_eq!(rb.data(), b"cccc");
        // The next read pass compacts exactly once.
        rb.extend(b"dddd");
        assert_eq!(rb.start, 0);
        assert_eq!(rb.data(), b"ccccdddd");
        // Full consumption rewinds for free.
        rb.consume(8);
        assert_eq!((rb.len(), rb.start), (0, 0));
        assert!(rb.buf.is_empty());
    }

    #[test]
    fn default_config_enables_the_fast_path() {
        let cfg = NetConfig::default();
        assert!(cfg.fastpath);
        assert!(cfg.fastpath_budget >= 1);
        assert!(cfg.initial_buf_bytes >= 64);
    }
}
