//! The TCP front-end itself (DESIGN.md §9.3–§9.4).
//!
//! One I/O thread owns the listener and every connection: it accepts,
//! reads bytes into per-connection buffers, cuts complete frames, runs
//! **admission control**, and drains per-connection outboxes back to
//! the sockets. Decoding and execution happen on a pool of dispatch
//! workers fed through the serve layer's [`BoundedQueue`] — the same
//! MPMC primitive the shards' own worker pools use.
//!
//! ## Readiness
//!
//! *When* the I/O thread runs is the [`Reactor`]'s business
//! (DESIGN.md §9.4): on Linux an epoll instance reports exactly which
//! sockets have bytes (or, while an outbox has unflushed replies,
//! room), and an eventfd **doorbell** rung by the dispatch workers
//! wakes the thread the moment a reply lands — round-trip latency is
//! bounded by work, not by a sleep constant. The portable fallback
//! (`ReactorChoice::Poll`) is PR 7's sweep loop behind the same trait,
//! retained as a differential oracle; every net suite runs against
//! both.
//!
//! Connections live in a **slab** indexed by their reactor token, so
//! an event maps to its connection without hashing, and tokens recycle
//! through a free list as peers come and go.
//!
//! ## Backpressure and shedding
//!
//! Three gates bound the work (and memory) a client can park in the
//! server, and all reject with an explicit [`Opcode::Busy`] reply — a
//! shed request is *never* silently dropped, and it is rejected
//! **before** execution, so it has no partial effects:
//!
//! 1. **Per-connection in-flight budget** (`NetConfig::inflight_budget`):
//!    admitted-but-unanswered requests per connection. One greedy
//!    pipeliner saturates its own budget, not the server.
//! 2. **Per-connection outbox byte cap** (`NetConfig::outbox_cap_bytes`):
//!    encoded-but-unflushed reply bytes. A peer that stops *reading*
//!    (while its kernel buffers are full) cannot grow server memory
//!    without bound — once the cap is hit, further requests shed with
//!    `Busy(OutboxFull)` until the outbox drains.
//! 3. **Dispatch queue capacity** (`NetConfig::queue_capacity`): the
//!    server-wide bound, enforced by [`BoundedQueue::try_push`] — the
//!    I/O thread never blocks on a full queue.
//!
//! Idle peers are bounded too: with `NetConfig::idle_timeout` set, a
//! connection that completes no frame for the window — and has nothing
//! in flight or unflushed — is closed on the reactor's sweep tick.
//!
//! ## Panic containment
//!
//! Every request executes under `catch_unwind`: a handler panic becomes
//! an `Error(Internal)` reply on that request and the worker moves on.
//! Combined with the poison-recovering locks underneath (serve queue,
//! cache shards, hot sketch, cluster gate), one bad request degrades
//! one reply — it cannot take down the connection, the worker pool, or
//! the shared serving state.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sizel_cluster::ClusterRouter;
use sizel_serve::{BoundedQueue, TryPushError};

use crate::frame::{
    decode_header, encode_frame, BusyReason, ErrorCode, FrameError, Opcode, HEADER_LEN,
    MAX_FRAME_LEN,
};
use crate::metrics::{render_http_metrics, render_metrics, NetCounters};
use crate::reactor::{
    build_reactor, Event, Reactor, ReactorChoice, ReactorKind, WakeHub, TOKEN_BASE, TOKEN_LISTENER,
};
use crate::wire::{
    decode_request, encode_applied_payload, encode_busy_payload, encode_error_payload,
    encode_results_payload, encode_stats_payload, encode_summary_payload, Request,
};

#[cfg(unix)]
use std::os::fd::AsRawFd;

/// Front-end construction parameters.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Dispatch worker threads (decode + execute + encode).
    pub dispatch_workers: usize,
    /// Server-wide dispatch queue bound; overflow sheds with
    /// `Busy(QueueFull)`.
    pub queue_capacity: usize,
    /// Per-connection cap on admitted-but-unanswered requests; overflow
    /// sheds with `Busy(InflightBudget)`.
    pub inflight_budget: usize,
    /// Per-connection cap on encoded-but-unflushed reply bytes; while
    /// exceeded, new requests shed with `Busy(OutboxFull)` (the
    /// slow-reader gate).
    pub outbox_cap_bytes: usize,
    /// Close a connection that completes no frame for this window (and
    /// has nothing in flight or unflushed). `None` disables reaping.
    pub idle_timeout: Option<Duration>,
    /// Readiness backend; `Auto` resolves `SIZEL_NET_REACTOR` then the
    /// platform default (epoll on Linux, the sweep loop elsewhere).
    pub reactor: ReactorChoice,
    /// Test/bench hook: every dispatch worker sleeps this long before
    /// executing a request, making queue/budget saturation deterministic
    /// on any machine. `None` (the default) in production.
    pub handler_delay: Option<Duration>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            dispatch_workers: 2,
            queue_capacity: 64,
            inflight_budget: 32,
            outbox_cap_bytes: 16 * 1024 * 1024,
            idle_timeout: None,
            reactor: ReactorChoice::Auto,
            handler_delay: None,
        }
    }
}

/// State shared between the I/O thread and dispatch workers for one
/// connection.
struct ConnShared {
    /// Encoded reply frames awaiting the I/O thread's next write pass.
    outbox: Mutex<VecDeque<Vec<u8>>>,
    /// Bytes currently queued in `outbox` (the outbox gate reads this
    /// without taking the lock).
    outbox_bytes: AtomicUsize,
    /// Admitted-but-unanswered requests (the budget gate's counter).
    in_flight: AtomicUsize,
    /// This connection's reactor token (names it in doorbell
    /// completions).
    token: usize,
    /// The doorbell back to the I/O thread.
    hub: Arc<WakeHub>,
}

impl ConnShared {
    /// Appends one encoded frame to the outbox (bytes accounted, no
    /// doorbell — the I/O thread's own paths flush in the same pass).
    fn push_frame(&self, frame: Vec<u8>) {
        self.outbox_bytes.fetch_add(frame.len(), Ordering::Relaxed);
        self.outbox.lock().unwrap_or_else(|p| p.into_inner()).push_back(frame);
    }

    /// Queues one encoded reply frame from the I/O thread itself.
    fn enqueue_reply_local(&self, counters: &NetCounters, frame: Vec<u8>) {
        self.push_frame(frame);
        NetCounters::bump(&counters.frames_out);
    }

    /// Queues one encoded reply frame from a dispatch worker and rings
    /// the doorbell so the I/O thread flushes it now, not on its next
    /// sweep.
    fn enqueue_reply(&self, counters: &NetCounters, frame: Vec<u8>) {
        self.push_frame(frame);
        NetCounters::bump(&counters.frames_out);
        self.hub.notify(self.token);
    }
}

/// One admitted request travelling to the dispatch pool.
struct NetJob {
    conn: Arc<ConnShared>,
    opcode: Opcode,
    req_id: u64,
    payload: Vec<u8>,
}

/// Per-connection state owned by the I/O thread.
struct Conn {
    stream: TcpStream,
    shared: Arc<ConnShared>,
    /// Received-but-unparsed bytes.
    inbuf: Vec<u8>,
    /// Bytes being written; `write_pos` marks progress through them.
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Peer hung up or the stream failed.
    dead: bool,
    /// Stop reading/parsing; flush the outbox and close. Set by
    /// protocol errors and by the HTTP scrape path.
    close_after_flush: bool,
    /// The connection turned out to be a plain-HTTP scraper.
    http: bool,
    /// Write-readiness interest currently registered with the reactor
    /// (on only while reply bytes are unflushed).
    want_write: bool,
    /// When the last complete frame was cut (idle reaping's clock;
    /// starts at accept).
    last_frame: Instant,
}

impl Conn {
    /// Reply bytes not yet handed to the kernel: queued outbox frames
    /// plus the unwritten tail of the write buffer — what the outbox
    /// gate compares against the cap.
    fn unflushed_bytes(&self) -> usize {
        self.shared.outbox_bytes.load(Ordering::Relaxed) + (self.write_buf.len() - self.write_pos)
    }
}

/// Immutable per-server knobs the I/O thread reads each pass.
struct IoOpts {
    budget: usize,
    outbox_cap: usize,
    idle_timeout: Option<Duration>,
}

/// The running front-end. Dropping it stops the I/O thread, closes the
/// dispatch queue, and joins every worker.
pub struct NetServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    queue: Arc<BoundedQueue<NetJob>>,
    counters: Arc<NetCounters>,
    router: Arc<ClusterRouter>,
    hub: Arc<WakeHub>,
    kind: ReactorKind,
    io_handle: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl NetServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving `router` over it.
    pub fn bind(router: Arc<ClusterRouter>, addr: &str, cfg: NetConfig) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(BoundedQueue::new(cfg.queue_capacity.max(1)));
        let counters = Arc::new(NetCounters::default());
        let reactor = build_reactor(cfg.reactor, &counters)?;
        let kind = reactor.kind();
        counters.reactor_backend.store(kind as u8, Ordering::Relaxed);
        let hub = Arc::clone(reactor.hub());

        let workers = (0..cfg.dispatch_workers.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                let router = Arc::clone(&router);
                let counters = Arc::clone(&counters);
                let delay = cfg.handler_delay;
                std::thread::Builder::new()
                    .name(format!("sizel-net-worker-{i}"))
                    .spawn(move || worker_loop(&queue, &router, &counters, delay))
                    .expect("spawn net worker")
            })
            .collect();

        let io_handle = {
            let shutdown = Arc::clone(&shutdown);
            let queue = Arc::clone(&queue);
            let router = Arc::clone(&router);
            let counters = Arc::clone(&counters);
            let opts = IoOpts {
                budget: cfg.inflight_budget.max(1),
                outbox_cap: cfg.outbox_cap_bytes.max(1),
                idle_timeout: cfg.idle_timeout,
            };
            std::thread::Builder::new()
                .name("sizel-net-io".into())
                .spawn(move || {
                    io_loop(listener, &shutdown, &queue, &router, &counters, &opts, reactor)
                })
                .expect("spawn net io thread")
        };

        Ok(NetServer {
            addr: local,
            shutdown,
            queue,
            counters,
            router,
            hub,
            kind,
            io_handle: Some(io_handle),
            workers,
        })
    }

    /// The bound address (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The front-end's live counters.
    pub fn counters(&self) -> &NetCounters {
        &self.counters
    }

    /// The served cluster (for in-process oracles in tests/benches).
    pub fn router(&self) -> &Arc<ClusterRouter> {
        &self.router
    }

    /// Which readiness backend the I/O thread is running on.
    pub fn reactor_kind(&self) -> ReactorKind {
        self.kind
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        // The I/O thread may be parked in the reactor: ring it out.
        self.hub.ring();
        self.queue.close();
        if let Some(h) = self.io_handle.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------
// Dispatch workers
// ---------------------------------------------------------------------

fn worker_loop(
    queue: &BoundedQueue<NetJob>,
    router: &ClusterRouter,
    counters: &NetCounters,
    delay: Option<Duration>,
) {
    while let Some(job) = queue.pop() {
        if let Some(d) = delay {
            std::thread::sleep(d);
        }
        // A panicking handler must cost exactly one reply: catch it,
        // answer Error(Internal), move to the next job. The state the
        // panic touched recovers via the poison-safe locks underneath.
        let reply = catch_unwind(AssertUnwindSafe(|| {
            handle_request(router, counters, job.opcode, &job.payload)
        }))
        .unwrap_or_else(|panic| {
            NetCounters::bump(&counters.errors_internal);
            let msg = panic_message(&panic);
            (Opcode::Error, encode_error_payload(ErrorCode::Internal, &msg))
        });
        job.conn.enqueue_reply(counters, encode_frame(reply.0, job.req_id, &reply.1));
        // Budget release strictly after the reply is visible to the
        // flusher, so close-after-flush never races a missing reply.
        job.conn.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("handler panicked: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("handler panicked: {s}")
    } else {
        "handler panicked".to_owned()
    }
}

fn handle_request(
    router: &ClusterRouter,
    counters: &NetCounters,
    opcode: Opcode,
    payload: &[u8],
) -> (Opcode, Vec<u8>) {
    let request = match decode_request(opcode, payload) {
        Ok(r) => r,
        Err(e) => {
            NetCounters::bump(&counters.errors_malformed);
            return (
                Opcode::Error,
                encode_error_payload(ErrorCode::MalformedPayload, &e.to_string()),
            );
        }
    };
    let bad_request = |counters: &NetCounters, e: String| {
        NetCounters::bump(&counters.errors_bad_request);
        (Opcode::Error, encode_error_payload(ErrorCode::BadRequest, &e))
    };
    match request {
        Request::Ping => (Opcode::Pong, Vec::new()),
        Request::Stats => {
            (Opcode::StatsText, encode_stats_payload(&render_metrics(counters, router)))
        }
        Request::Query { requests } => match router.batch_query_at(&requests) {
            Ok((epoch, results)) => (Opcode::Results, encode_results_payload(epoch, &results)),
            Err(e) => bad_request(counters, e.to_string()),
        },
        Request::Summarize { tds, opts } => match router.summarize_at(tds, opts) {
            Ok((epoch, result)) => (Opcode::Summary, encode_summary_payload(epoch, &result)),
            Err(e) => bad_request(counters, e.to_string()),
        },
        Request::ApplyBatch { mutations } => match router.apply_batch(mutations) {
            Ok(epoch) => (Opcode::Applied, encode_applied_payload(epoch)),
            Err(e) => bad_request(counters, e.to_string()),
        },
    }
}

// ---------------------------------------------------------------------
// The I/O thread
// ---------------------------------------------------------------------

/// Reactor wait bound when no idle timeout asks for a finer sweep tick:
/// a liveness backstop (shutdown and doorbells wake the thread early;
/// this only bounds how stale a missed tick can get).
const SWEEP_TICK: Duration = Duration::from_millis(100);

fn io_loop(
    listener: TcpListener,
    shutdown: &AtomicBool,
    queue: &Arc<BoundedQueue<NetJob>>,
    router: &Arc<ClusterRouter>,
    counters: &NetCounters,
    opts: &IoOpts,
    mut reactor: Box<dyn Reactor>,
) {
    let hub = Arc::clone(reactor.hub());
    #[cfg(unix)]
    let listener_fd = listener.as_raw_fd();
    #[cfg(not(unix))]
    let listener_fd = -1;
    if reactor.register(listener_fd, TOKEN_LISTENER).is_err() {
        return; // cannot watch the listener: nothing to serve
    }

    // The connection slab: token == index + TOKEN_BASE, holes recycled
    // through the free list.
    let mut slab: Vec<Option<Conn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut events: Vec<Event> = Vec::new();
    let mut completions: Vec<usize> = Vec::new();
    // The sweep tick: reap cadence under epoll (the poll backend sweeps
    // every pass anyway); quartered so an idle peer overstays its
    // window by at most ~25%.
    let tick = match opts.idle_timeout {
        Some(w) => (w / 4).clamp(Duration::from_millis(1), SWEEP_TICK),
        None => SWEEP_TICK,
    };
    let mut progressed = true; // first pass sweeps unconditionally

    loop {
        // Arm-then-recheck handshake (reactor module docs): a worker
        // completion can never slip between the pending check and the
        // wait.
        hub.arm();
        let woke = if shutdown.load(Ordering::Acquire) {
            hub.disarm();
            break;
        } else if hub.has_pending() {
            events.clear();
            true
        } else {
            reactor.wait(&mut events, tick, progressed)
        };
        hub.disarm();
        if shutdown.load(Ordering::Acquire) {
            break;
        }
        progressed = false;

        // Readiness events: the listener accepts, connections move bytes.
        for &ev in &events {
            match ev.token {
                TOKEN_LISTENER => {
                    progressed |= accept_all(
                        &listener,
                        &mut slab,
                        &mut free,
                        reactor.as_mut(),
                        &hub,
                        counters,
                    );
                }
                token => {
                    let idx = token - TOKEN_BASE;
                    if let Some(Some(conn)) = slab.get_mut(idx) {
                        progressed |=
                            poll_conn(conn, ev, reactor.as_mut(), queue, router, counters, opts);
                    }
                }
            }
        }

        // Doorbell completions: flush exactly the connections whose
        // outboxes just gained replies (tokens may be stale after a
        // close — flushing an empty outbox is a no-op).
        hub.drain_pending(&mut completions);
        for token in completions.drain(..) {
            let idx = token.wrapping_sub(TOKEN_BASE);
            if let Some(Some(conn)) = slab.get_mut(idx) {
                progressed |= flush_conn(conn, reactor.as_mut(), counters);
            }
        }

        if woke {
            NetCounters::bump(if progressed {
                &counters.reactor_wakeups
            } else {
                &counters.reactor_spurious
            });
        }

        reap(&mut slab, &mut free, reactor.as_mut(), counters, opts.idle_timeout);
    }
    // Shutdown: connections drop here, closing their sockets.
}

/// Accepts everything pending on the listener, registering each new
/// connection with the reactor. Returns whether anything was accepted.
fn accept_all(
    listener: &TcpListener,
    slab: &mut Vec<Option<Conn>>,
    free: &mut Vec<usize>,
    reactor: &mut dyn Reactor,
    hub: &Arc<WakeHub>,
    counters: &NetCounters,
) -> bool {
    let mut progressed = false;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(true);
                let _ = stream.set_nodelay(true);
                let idx = free.pop().unwrap_or_else(|| {
                    slab.push(None);
                    slab.len() - 1
                });
                let token = idx + TOKEN_BASE;
                #[cfg(unix)]
                let fd = stream.as_raw_fd();
                #[cfg(not(unix))]
                let fd = -1;
                if reactor.register(fd, token).is_err() {
                    free.push(idx);
                    continue; // stream drops: connection refused late
                }
                NetCounters::bump(&counters.connections_opened);
                NetCounters::bump(&counters.connections_live);
                slab[idx] = Some(Conn {
                    stream,
                    shared: Arc::new(ConnShared {
                        outbox: Mutex::new(VecDeque::new()),
                        outbox_bytes: AtomicUsize::new(0),
                        in_flight: AtomicUsize::new(0),
                        token,
                        hub: Arc::clone(hub),
                    }),
                    inbuf: Vec::new(),
                    write_buf: Vec::new(),
                    write_pos: 0,
                    dead: false,
                    close_after_flush: false,
                    http: false,
                    want_write: false,
                    last_frame: Instant::now(),
                });
                progressed = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(_) => break,
        }
    }
    progressed
}

/// Drops every connection that is dead, done with a scheduled close, or
/// idle past the reaping window.
fn reap(
    slab: &mut [Option<Conn>],
    free: &mut Vec<usize>,
    reactor: &mut dyn Reactor,
    counters: &NetCounters,
    idle_timeout: Option<Duration>,
) {
    let now = Instant::now();
    for (idx, slot) in slab.iter_mut().enumerate() {
        let Some(conn) = slot else { continue };
        let done_flushing = conn.write_pos >= conn.write_buf.len()
            && conn.shared.outbox.lock().unwrap_or_else(|p| p.into_inner()).is_empty()
            && conn.shared.in_flight.load(Ordering::Acquire) == 0;
        let mut drop_it = conn.dead || (conn.close_after_flush && done_flushing);
        // Idle reaping: no complete frame for the window AND nothing of
        // ours still owed to the peer — a connection waiting on its own
        // pipelined replies is busy, not idle.
        if !drop_it {
            if let Some(window) = idle_timeout {
                if done_flushing && now.duration_since(conn.last_frame) >= window {
                    NetCounters::bump(&counters.idle_reaped);
                    drop_it = true;
                }
            }
        }
        if drop_it {
            #[cfg(unix)]
            let fd = conn.stream.as_raw_fd();
            #[cfg(not(unix))]
            let fd = -1;
            reactor.deregister(fd, idx + TOKEN_BASE);
            counters.connections_live.fetch_sub(1, Ordering::Relaxed);
            *slot = None;
            free.push(idx);
        }
    }
}

/// One readiness-driven pass over a connection: read to `WouldBlock`,
/// parse/admit every complete frame, flush. Returns whether any bytes
/// moved.
fn poll_conn(
    conn: &mut Conn,
    ev: Event,
    reactor: &mut dyn Reactor,
    queue: &Arc<BoundedQueue<NetJob>>,
    router: &Arc<ClusterRouter>,
    counters: &NetCounters,
    opts: &IoOpts,
) -> bool {
    let mut progressed = false;

    // Read whatever the socket has.
    if ev.readable && !conn.dead && !conn.close_after_flush {
        let mut chunk = [0u8; 4096];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.dead = true;
                    break;
                }
                Ok(n) => {
                    conn.inbuf.extend_from_slice(&chunk[..n]);
                    progressed = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
    }

    // A plain-HTTP scraper? The frame magic is "LS"; an ASCII "GET "
    // can't be a frame, so the first four octets decide once.
    if !conn.http && !conn.close_after_flush && conn.inbuf.len() >= 4 && &conn.inbuf[..4] == b"GET "
    {
        conn.http = true;
        conn.close_after_flush = true;
        NetCounters::bump(&counters.http_scrapes);
        conn.shared.push_frame(render_http_metrics(counters, router));
        conn.inbuf.clear();
    }

    // Cut complete frames and run admission.
    while !conn.http && !conn.close_after_flush && conn.inbuf.len() >= HEADER_LEN {
        let head: [u8; HEADER_LEN] = conn.inbuf[..HEADER_LEN].try_into().expect("16 bytes");
        // The id is at a fixed offset; even a rejected header echoes it
        // so the client can correlate the failure.
        let raw_req_id = u64::from_le_bytes(head[4..12].try_into().expect("8 bytes"));
        match decode_header(&head) {
            Ok(h) => {
                let total = HEADER_LEN + h.len as usize;
                if conn.inbuf.len() < total {
                    break; // wait for the rest of the payload
                }
                let payload = conn.inbuf[HEADER_LEN..total].to_vec();
                conn.inbuf.drain(..total);
                NetCounters::bump(&counters.frames_in);
                progressed = true;
                conn.last_frame = Instant::now();
                admit(conn, queue, counters, opts, h.opcode, h.req_id, payload);
            }
            Err(FrameError::UnknownOpcode(b)) => {
                // Magic, version, and length all validated — the frame
                // boundary is trustworthy, so skip exactly this frame
                // and keep the connection.
                let len = u32::from_le_bytes(head[12..16].try_into().expect("4 bytes"));
                if len > MAX_FRAME_LEN {
                    protocol_error(
                        conn,
                        counters,
                        raw_req_id,
                        &FrameError::Oversized(len).to_string(),
                    );
                    break;
                }
                let total = HEADER_LEN + len as usize;
                if conn.inbuf.len() < total {
                    break;
                }
                conn.inbuf.drain(..total);
                NetCounters::bump(&counters.frames_in);
                progressed = true;
                conn.last_frame = Instant::now();
                NetCounters::bump(&counters.errors_malformed);
                conn.shared.enqueue_reply_local(
                    counters,
                    encode_frame(
                        Opcode::Error,
                        raw_req_id,
                        &encode_error_payload(
                            ErrorCode::UnknownOpcode,
                            &format!("unknown opcode 0x{b:02x}"),
                        ),
                    ),
                );
            }
            Err(e) => {
                // Bad magic/version/length: the framing itself is no
                // longer trustworthy. Answer once, then close.
                protocol_error(conn, counters, raw_req_id, &e.to_string());
                break;
            }
        }
    }

    // Flush when this pass produced replies (sheds, errors, the HTTP
    // page) or the reactor reported room for a blocked write; a pure
    // read event with nothing parsed has nothing to write.
    if progressed || ev.writable {
        progressed |= flush_conn(conn, reactor, counters);
    }
    progressed
}

/// Moves finished replies into the write buffer, writes to
/// `WouldBlock`, and keeps EPOLLOUT interest registered exactly while
/// bytes remain unflushed (so a partial write resumes on writability,
/// not on the next sweep). Returns whether any bytes moved.
fn flush_conn(conn: &mut Conn, reactor: &mut dyn Reactor, counters: &NetCounters) -> bool {
    let mut progressed = false;
    loop {
        if conn.write_pos >= conn.write_buf.len() {
            conn.write_buf.clear();
            conn.write_pos = 0;
            let mut outbox = conn.shared.outbox.lock().unwrap_or_else(|p| p.into_inner());
            let mut moved = 0usize;
            while let Some(frame) = outbox.pop_front() {
                moved += frame.len();
                conn.write_buf.extend_from_slice(&frame);
            }
            drop(outbox);
            conn.shared.outbox_bytes.fetch_sub(moved, Ordering::Relaxed);
            if conn.write_buf.is_empty() {
                break; // fully drained
            }
        }
        let mut blocked = false;
        while !conn.dead && conn.write_pos < conn.write_buf.len() {
            match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
                Ok(0) => conn.dead = true,
                Ok(n) => {
                    conn.write_pos += n;
                    progressed = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    blocked = true;
                    break;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => conn.dead = true,
            }
        }
        if blocked || conn.dead {
            break;
        }
    }

    // EPOLLOUT toggling: interest on iff the kernel couldn't take
    // everything (no-op on the poll backend, which always sweeps).
    let want = !conn.dead && conn.write_pos < conn.write_buf.len();
    if want != conn.want_write {
        #[cfg(unix)]
        let fd = conn.stream.as_raw_fd();
        #[cfg(not(unix))]
        let fd = -1;
        if reactor.set_writable(fd, conn.shared.token, want).is_ok() {
            conn.want_write = want;
        }
        NetCounters::bump(&counters.epollout_toggles);
    }
    progressed
}

/// The three-gate admission decision for one complete request frame.
fn admit(
    conn: &mut Conn,
    queue: &Arc<BoundedQueue<NetJob>>,
    counters: &NetCounters,
    opts: &IoOpts,
    opcode: Opcode,
    req_id: u64,
    payload: Vec<u8>,
) {
    // Gate 1: the connection's own in-flight budget.
    if conn.shared.in_flight.load(Ordering::Acquire) >= opts.budget {
        NetCounters::bump(&counters.shed_inflight);
        conn.shared.enqueue_reply_local(
            counters,
            encode_frame(Opcode::Busy, req_id, &encode_busy_payload(BusyReason::InflightBudget)),
        );
        return;
    }
    // Gate 2: the connection's unflushed reply bytes — a peer that has
    // stopped reading must not grow server memory without bound. The
    // `Busy` reply itself is queued (small, and bounded by the peer's
    // own send rate), so the shed is still never silent.
    if conn.unflushed_bytes() >= opts.outbox_cap {
        NetCounters::bump(&counters.shed_outbox);
        conn.shared.enqueue_reply_local(
            counters,
            encode_frame(Opcode::Busy, req_id, &encode_busy_payload(BusyReason::OutboxFull)),
        );
        return;
    }
    conn.shared.in_flight.fetch_add(1, Ordering::AcqRel);
    // Gate 3: the server-wide dispatch queue.
    let job = NetJob { conn: Arc::clone(&conn.shared), opcode, req_id, payload };
    match queue.try_push(job) {
        Ok(()) => {}
        Err(TryPushError::Full(job)) => {
            job.conn.in_flight.fetch_sub(1, Ordering::AcqRel);
            NetCounters::bump(&counters.shed_queue);
            conn.shared.enqueue_reply_local(
                counters,
                encode_frame(Opcode::Busy, req_id, &encode_busy_payload(BusyReason::QueueFull)),
            );
        }
        Err(TryPushError::Closed(job)) => {
            job.conn.in_flight.fetch_sub(1, Ordering::AcqRel);
            NetCounters::bump(&counters.errors_internal);
            conn.shared.enqueue_reply_local(
                counters,
                encode_frame(
                    Opcode::Error,
                    req_id,
                    &encode_error_payload(ErrorCode::Internal, "server shutting down"),
                ),
            );
        }
    }
}

/// Answers a broken envelope with `Error(Protocol)` and schedules the
/// connection for close-after-flush (the framing is untrustworthy, so
/// no further bytes are parsed).
fn protocol_error(conn: &mut Conn, counters: &NetCounters, req_id: u64, msg: &str) {
    NetCounters::bump(&counters.errors_protocol);
    conn.shared.enqueue_reply_local(
        counters,
        encode_frame(Opcode::Error, req_id, &encode_error_payload(ErrorCode::Protocol, msg)),
    );
    conn.inbuf.clear();
    conn.close_after_flush = true;
}
