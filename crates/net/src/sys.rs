//! Raw Linux syscall bindings for the readiness reactor (DESIGN.md
//! §9.4): `epoll` for socket readiness and `eventfd` for the dispatch
//! workers' doorbell.
//!
//! std already links libc, so declaring the symbols `extern "C"` gives
//! the reactor real kernel readiness with **no new dependency** — the
//! same no-registry-access constraint the vendored dev-deps live under.
//! Everything here is a thin, safe wrapper: raw fds are owned by [`Fd`]
//! (closed on drop), every call converts `-1` into
//! `io::Error::last_os_error()`, and `EINTR` is retried where POSIX
//! allows it to surface.

use std::io;
use std::os::raw::{c_int, c_uint, c_void};

// -- epoll event masks -------------------------------------------------

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its write half; folded into "readable" so the next
/// `read` observes the EOF.
pub const EPOLLRDHUP: u32 = 0x2000;

// -- epoll_ctl ops and creation flags ----------------------------------

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
/// `O_CLOEXEC` — shared by `epoll_create1` and `eventfd`.
const CLOEXEC: c_int = 0o2000000;
/// `EFD_NONBLOCK` (`O_NONBLOCK`) — the doorbell drain must never park
/// the I/O thread.
const EFD_NONBLOCK: c_int = 0o4000;

/// The kernel's `struct epoll_event`. The x86-64 kernel ABI packs it
/// (4-byte `events` immediately followed by the 8-byte `data`); other
/// architectures use natural C layout — mirrored here exactly as the
/// kernel UAPI declares it.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

/// An owned raw file descriptor, closed on drop (the reactor's epoll
/// instance and doorbell eventfd; sockets stay owned by their
/// `TcpStream`s).
#[derive(Debug)]
pub struct Fd(c_int);

impl Fd {
    pub fn raw(&self) -> c_int {
        self.0
    }
}

impl Drop for Fd {
    fn drop(&mut self) {
        // Nothing actionable on a failed close of an fd we own outright.
        unsafe { close(self.0) };
    }
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// A fresh epoll instance (`EPOLL_CLOEXEC`).
pub fn epoll_create() -> io::Result<Fd> {
    cvt(unsafe { epoll_create1(CLOEXEC) }).map(Fd)
}

fn epoll_op(ep: &Fd, op: c_int, fd: c_int, mask: u32, token: u64) -> io::Result<()> {
    let mut ev = EpollEvent { events: mask, data: token };
    cvt(unsafe { epoll_ctl(ep.raw(), op, fd, &mut ev) }).map(|_| ())
}

/// Registers `fd` for `mask` with `token` carried back in every event.
pub fn epoll_add(ep: &Fd, fd: c_int, mask: u32, token: u64) -> io::Result<()> {
    epoll_op(ep, EPOLL_CTL_ADD, fd, mask, token)
}

/// Changes an existing registration's mask (the EPOLLOUT toggle).
pub fn epoll_mod(ep: &Fd, fd: c_int, mask: u32, token: u64) -> io::Result<()> {
    epoll_op(ep, EPOLL_CTL_MOD, fd, mask, token)
}

/// Removes a registration. Closing the fd deregisters it too; this is
/// the explicit form used before a socket drops.
pub fn epoll_del(ep: &Fd, fd: c_int) -> io::Result<()> {
    epoll_op(ep, EPOLL_CTL_DEL, fd, 0, 0)
}

/// Blocks up to `timeout_ms` for readiness, retrying `EINTR`. Returns
/// how many events landed in `buf`.
pub fn epoll_wait_events(ep: &Fd, buf: &mut [EpollEvent], timeout_ms: c_int) -> io::Result<usize> {
    loop {
        let n = unsafe { epoll_wait(ep.raw(), buf.as_mut_ptr(), buf.len() as c_int, timeout_ms) };
        match cvt(n) {
            Ok(n) => return Ok(n as usize),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// A fresh doorbell eventfd (counter 0, nonblocking, cloexec).
pub fn eventfd_new() -> io::Result<Fd> {
    cvt(unsafe { eventfd(0, CLOEXEC | EFD_NONBLOCK) }).map(Fd)
}

/// Rings the doorbell: adds 1 to the eventfd counter, making it
/// readable. `EAGAIN` (counter saturated at `u64::MAX - 1`) still means
/// "a wakeup is pending", so it is success here.
pub fn eventfd_ring(fd: c_int) -> io::Result<()> {
    let one = 1u64.to_ne_bytes();
    let n = unsafe { write(fd, one.as_ptr() as *const c_void, one.len()) };
    if n == one.len() as isize {
        return Ok(());
    }
    let e = io::Error::last_os_error();
    if e.kind() == io::ErrorKind::WouldBlock {
        Ok(())
    } else {
        Err(e)
    }
}

/// Drains the doorbell (resets the counter to 0), returning how many
/// rings had accumulated since the last drain. `EAGAIN` means nobody
/// rang — 0.
pub fn eventfd_drain(fd: c_int) -> u64 {
    let mut buf = [0u8; 8];
    let n = unsafe { read(fd, buf.as_mut_ptr() as *mut c_void, buf.len()) };
    if n == buf.len() as isize {
        u64::from_ne_bytes(buf)
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eventfd_rings_accumulate_and_drain_once() {
        let fd = eventfd_new().expect("eventfd");
        assert_eq!(eventfd_drain(fd.raw()), 0, "fresh doorbell is silent");
        for _ in 0..3 {
            eventfd_ring(fd.raw()).expect("ring");
        }
        assert_eq!(eventfd_drain(fd.raw()), 3, "rings accumulate in the counter");
        assert_eq!(eventfd_drain(fd.raw()), 0, "one drain resets it");
    }

    #[test]
    fn epoll_sees_a_rung_doorbell_and_goes_quiet_after_drain() {
        let ep = epoll_create().expect("epoll");
        let bell = eventfd_new().expect("eventfd");
        epoll_add(&ep, bell.raw(), EPOLLIN, 7).expect("add");

        let mut buf = [EpollEvent { events: 0, data: 0 }; 4];
        // Silent doorbell: the wait times out empty.
        assert_eq!(epoll_wait_events(&ep, &mut buf, 0).expect("wait"), 0);

        eventfd_ring(bell.raw()).expect("ring");
        let n = epoll_wait_events(&ep, &mut buf, 1000).expect("wait");
        assert_eq!(n, 1);
        let (events, data) = (buf[0].events, buf[0].data);
        assert_ne!(events & EPOLLIN, 0);
        assert_eq!(data, 7, "the registration token rides back on the event");

        // Level-triggered: still readable until drained, silent after.
        assert_eq!(epoll_wait_events(&ep, &mut buf, 0).expect("wait"), 1);
        assert_eq!(eventfd_drain(bell.raw()), 1);
        assert_eq!(epoll_wait_events(&ep, &mut buf, 0).expect("wait"), 0);
    }
}
