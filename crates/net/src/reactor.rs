//! Readiness backends for the I/O thread (DESIGN.md §9.4).
//!
//! The [`Reactor`] trait is the narrow waist between the event loop in
//! [`server`](crate::server) and how readiness is learned:
//!
//! * [`EpollReactor`] (Linux) — level-triggered `epoll` over the
//!   listener and every connection, plus an `eventfd` **doorbell** the
//!   dispatch workers ring when a reply lands in an outbox. The I/O
//!   thread wakes on the event, not on a sleep tick, so round-trip
//!   latency is bounded by work, not by a sleep constant.
//! * [`PollReactor`] (portable) — the original sweep-everything loop,
//!   retained both as the non-Linux fallback and as a differential
//!   oracle for the epoll path: every suite runs against both backends.
//!   Its doorbell is a condvar, so reply completions cut the idle sleep
//!   short instead of waiting out the full 300µs.
//!
//! ## The doorbell protocol
//!
//! Lost wakeups are the classic failure mode of "signal a sleeping
//! poller", so the handshake is explicit. The [`WakeHub`] carries a
//! `pending` completion list and an `armed` flag:
//!
//! * a worker **notifies**: push the connection token onto `pending`,
//!   then ring the bell only if it observes `armed` set (swapping it
//!   off) — rings while the I/O thread is awake anyway coalesce into
//!   nothing (counted, so the saturation suites can pin "one write per
//!   burst");
//! * the I/O thread **arms** the flag, then re-checks `pending`
//!   *after* arming and skips the wait if anything slipped in — a
//!   notify can therefore never land in the gap between the check and
//!   the sleep;
//! * the eventfd itself is level-triggered and drained only by the I/O
//!   thread, so even a ring that races the `epoll_wait` entry is
//!   delivered by the next wait.

use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::metrics::NetCounters;

#[cfg(target_os = "linux")]
use crate::sys;
#[cfg(target_os = "linux")]
use std::os::fd::RawFd;
#[cfg(not(target_os = "linux"))]
type RawFd = i32;

/// Which backend [`NetServer`](crate::NetServer) should run its I/O
/// thread on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ReactorChoice {
    /// `SIZEL_NET_REACTOR` if set (`"poll"`/`"epoll"`), else the
    /// platform default: epoll on Linux, the portable poll loop
    /// elsewhere.
    #[default]
    Auto,
    /// The sleep-poll sweep loop (portable).
    Poll,
    /// The epoll + eventfd reactor (Linux only; `bind` fails with
    /// `Unsupported` elsewhere).
    Epoll,
}

/// The backend a server actually resolved to (reported by
/// [`NetServer::reactor_kind`](crate::NetServer::reactor_kind) and on
/// the metrics page).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ReactorKind {
    /// Sleep-poll sweep.
    Poll = 1,
    /// epoll + eventfd doorbell.
    Epoll = 2,
}

impl ReactorKind {
    /// The label used in metrics and bench ids.
    pub fn name(self) -> &'static str {
        match self {
            ReactorKind::Poll => "poll",
            ReactorKind::Epoll => "epoll",
        }
    }

    /// Decodes the `NetCounters::reactor_backend` byte.
    pub fn from_u8(b: u8) -> Option<ReactorKind> {
        match b {
            1 => Some(ReactorKind::Poll),
            2 => Some(ReactorKind::Epoll),
            _ => None,
        }
    }
}

/// Fixed token for the listening socket.
pub(crate) const TOKEN_LISTENER: usize = 0;
/// Fixed token for the doorbell (never surfaced to the event loop; the
/// reactor drains it internally).
pub(crate) const TOKEN_DOORBELL: usize = 1;
/// First token handed to a connection (slab index + `TOKEN_BASE`).
pub(crate) const TOKEN_BASE: usize = 2;

/// One readiness fact delivered to the event loop.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Event {
    pub token: usize,
    pub readable: bool,
    pub writable: bool,
}

/// The bell half of the doorbell: what a ring physically does.
enum Bell {
    /// Write 1 to an eventfd registered in the epoll set.
    #[cfg(target_os = "linux")]
    Eventfd(sys::Fd),
    /// Set a flag under a mutex and notify the condvar the poll loop
    /// sleeps on.
    Flag { state: Mutex<bool>, cv: Condvar },
}

/// Shared between the I/O thread, the dispatch workers, and the server
/// handle: completion tokens plus the wakeup bell (protocol in the
/// module docs).
pub(crate) struct WakeHub {
    /// Connection tokens with freshly enqueued replies.
    pending: Mutex<Vec<usize>>,
    /// True only while the I/O thread is (about to be) asleep.
    armed: AtomicBool,
    bell: Bell,
    counters: Arc<NetCounters>,
}

impl WakeHub {
    fn new(bell: Bell, counters: Arc<NetCounters>) -> Arc<WakeHub> {
        Arc::new(WakeHub {
            pending: Mutex::new(Vec::new()),
            armed: AtomicBool::new(false),
            bell,
            counters,
        })
    }

    /// Worker side: a reply for `token` just landed; wake the I/O
    /// thread if it is (heading) to sleep.
    pub fn notify(&self, token: usize) {
        self.pending.lock().unwrap_or_else(|p| p.into_inner()).push(token);
        self.ring();
    }

    /// Rings the bell iff the I/O thread is armed — rings while it is
    /// awake coalesce (one physical write per sleep at most).
    pub fn ring(&self) {
        if self.armed.swap(false, Ordering::AcqRel) {
            NetCounters::bump(&self.counters.doorbell_rings);
            match &self.bell {
                #[cfg(target_os = "linux")]
                Bell::Eventfd(fd) => {
                    let _ = sys::eventfd_ring(fd.raw());
                }
                Bell::Flag { state, cv } => {
                    *state.lock().unwrap_or_else(|p| p.into_inner()) = true;
                    cv.notify_one();
                }
            }
        } else {
            NetCounters::bump(&self.counters.doorbell_coalesced);
        }
    }

    /// I/O thread side: declare "about to sleep". Must be followed by a
    /// [`WakeHub::has_pending`] re-check before actually waiting.
    pub fn arm(&self) {
        self.armed.store(true, Ordering::Release);
    }

    /// I/O thread side: awake again; subsequent notifies need no bell.
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::Release);
    }

    /// Completions waiting to be flushed?
    pub fn has_pending(&self) -> bool {
        !self.pending.lock().unwrap_or_else(|p| p.into_inner()).is_empty()
    }

    /// Moves every queued completion token into `out`.
    pub fn drain_pending(&self, out: &mut Vec<usize>) {
        let mut pending = self.pending.lock().unwrap_or_else(|p| p.into_inner());
        out.append(&mut pending);
    }

    /// Poll backend: sleep up to `dur` unless (or until) rung. Returns
    /// whether a ring cut the sleep short.
    fn flag_wait(&self, dur: Duration) -> bool {
        let Bell::Flag { state, cv } = &self.bell else {
            return false;
        };
        let mut st = state.lock().unwrap_or_else(|p| p.into_inner());
        if !*st {
            st = match cv.wait_timeout(st, dur) {
                Ok((guard, _)) => guard,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
        std::mem::replace(&mut *st, false)
    }

    /// Poll backend, no-sleep path: consume a ring if one happened.
    fn flag_consume(&self) -> bool {
        let Bell::Flag { state, .. } = &self.bell else {
            return false;
        };
        std::mem::replace(&mut *state.lock().unwrap_or_else(|p| p.into_inner()), false)
    }
}

/// What the event loop needs from a readiness backend.
pub(crate) trait Reactor: Send {
    /// Which backend this is (metrics + test labels).
    fn kind(&self) -> ReactorKind;

    /// The doorbell hub shared with workers and the server handle.
    fn hub(&self) -> &Arc<WakeHub>;

    /// Starts watching `fd` for readability under `token`.
    fn register(&mut self, fd: RawFd, token: usize) -> io::Result<()>;

    /// Toggles write-readiness interest for an already registered fd —
    /// on only while its connection has unflushed reply bytes.
    fn set_writable(&mut self, fd: RawFd, token: usize, writable: bool) -> io::Result<()>;

    /// Stops watching `fd` (best-effort; the fd closes right after).
    fn deregister(&mut self, fd: RawFd, token: usize);

    /// Fills `events` with ready tokens, blocking up to `timeout` (the
    /// idle/reap sweep tick). `progressed` says whether the previous
    /// pass moved bytes — the poll backend uses it to decide whether it
    /// may sleep; epoll ignores it. Returns true when woken by real
    /// readiness or the doorbell (false = plain tick expiry).
    fn wait(&mut self, events: &mut Vec<Event>, timeout: Duration, progressed: bool) -> bool;
}

// ---------------------------------------------------------------------
// EpollReactor (Linux)
// ---------------------------------------------------------------------

/// Level-triggered epoll over every fd plus the eventfd doorbell.
#[cfg(target_os = "linux")]
pub(crate) struct EpollReactor {
    ep: sys::Fd,
    /// Raw doorbell fd (owned by the hub's `Bell::Eventfd`).
    bell_fd: RawFd,
    hub: Arc<WakeHub>,
    buf: Vec<sys::EpollEvent>,
}

#[cfg(target_os = "linux")]
impl EpollReactor {
    pub fn new(counters: Arc<NetCounters>) -> io::Result<EpollReactor> {
        let ep = sys::epoll_create()?;
        let bell = sys::eventfd_new()?;
        let bell_fd = bell.raw();
        sys::epoll_add(&ep, bell_fd, sys::EPOLLIN, TOKEN_DOORBELL as u64)?;
        let hub = WakeHub::new(Bell::Eventfd(bell), counters);
        Ok(EpollReactor {
            ep,
            bell_fd,
            hub,
            buf: vec![sys::EpollEvent { events: 0, data: 0 }; 128],
        })
    }

    fn read_mask() -> u32 {
        sys::EPOLLIN | sys::EPOLLRDHUP
    }
}

#[cfg(target_os = "linux")]
impl Reactor for EpollReactor {
    fn kind(&self) -> ReactorKind {
        ReactorKind::Epoll
    }

    fn hub(&self) -> &Arc<WakeHub> {
        &self.hub
    }

    fn register(&mut self, fd: RawFd, token: usize) -> io::Result<()> {
        sys::epoll_add(&self.ep, fd, Self::read_mask(), token as u64)
    }

    fn set_writable(&mut self, fd: RawFd, token: usize, writable: bool) -> io::Result<()> {
        let mask = if writable { Self::read_mask() | sys::EPOLLOUT } else { Self::read_mask() };
        sys::epoll_mod(&self.ep, fd, mask, token as u64)
    }

    fn deregister(&mut self, fd: RawFd, _token: usize) {
        let _ = sys::epoll_del(&self.ep, fd);
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout: Duration, _progressed: bool) -> bool {
        events.clear();
        let timeout_ms = timeout.as_millis().min(i32::MAX as u128).max(1) as i32;
        let n = sys::epoll_wait_events(&self.ep, &mut self.buf, timeout_ms).unwrap_or(0);
        let mut woke = false;
        for ev in &self.buf[..n] {
            // Copy out of the (packed) kernel struct before use.
            let (mask, token) = (ev.events, ev.data as usize);
            woke = true;
            if token == TOKEN_DOORBELL {
                sys::eventfd_drain(self.bell_fd);
                continue;
            }
            // Errors and hangups surface as readiness on both sides so
            // the next read/write observes the failure directly.
            let fail = mask & (sys::EPOLLERR | sys::EPOLLHUP) != 0;
            events.push(Event {
                token,
                readable: fail || mask & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                writable: fail || mask & sys::EPOLLOUT != 0,
            });
        }
        woke
    }
}

// ---------------------------------------------------------------------
// PollReactor (portable fallback + differential oracle)
// ---------------------------------------------------------------------

/// Idle sleep between sweeps when nothing moved — the retained latency
/// floor of the portable loop (PR 7's `IDLE_SLEEP`), now interruptible
/// by the doorbell on the reply leg.
pub(crate) const POLL_IDLE_SLEEP: Duration = Duration::from_micros(300);

/// The sweep-everything loop behind the [`Reactor`] interface: every
/// registered token is reported ready on every pass, and "waiting" is
/// the old idle sleep (condvar-backed, so reply doorbells end it
/// early).
pub(crate) struct PollReactor {
    hub: Arc<WakeHub>,
    tokens: Vec<usize>,
}

impl PollReactor {
    pub fn new(counters: Arc<NetCounters>) -> PollReactor {
        let bell = Bell::Flag { state: Mutex::new(false), cv: Condvar::new() };
        PollReactor { hub: WakeHub::new(bell, counters), tokens: Vec::new() }
    }
}

impl Reactor for PollReactor {
    fn kind(&self) -> ReactorKind {
        ReactorKind::Poll
    }

    fn hub(&self) -> &Arc<WakeHub> {
        &self.hub
    }

    fn register(&mut self, _fd: RawFd, token: usize) -> io::Result<()> {
        self.tokens.push(token);
        Ok(())
    }

    fn set_writable(&mut self, _fd: RawFd, _token: usize, _writable: bool) -> io::Result<()> {
        Ok(()) // the sweep always attempts both directions
    }

    fn deregister(&mut self, _fd: RawFd, token: usize) {
        self.tokens.retain(|t| *t != token);
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout: Duration, progressed: bool) -> bool {
        let woke = if progressed {
            // Bytes moved last pass: sweep again immediately (the old
            // loop's hot path), just consuming any ring.
            self.hub.flag_consume()
        } else {
            self.hub.flag_wait(POLL_IDLE_SLEEP.min(timeout))
        };
        events.clear();
        events.extend(self.tokens.iter().map(|&token| Event {
            token,
            readable: true,
            writable: true,
        }));
        woke
    }
}

// ---------------------------------------------------------------------
// Resolution
// ---------------------------------------------------------------------

/// Resolves `Auto` through `SIZEL_NET_REACTOR` / the platform default
/// and constructs the backend. Called once by `NetServer::bind`.
pub(crate) fn build_reactor(
    choice: ReactorChoice,
    counters: &Arc<NetCounters>,
) -> io::Result<Box<dyn Reactor>> {
    let env = std::env::var("SIZEL_NET_REACTOR").ok();
    let resolved = resolve_choice(choice, env.as_deref())?;
    match resolved {
        ReactorChoice::Poll => Ok(Box::new(PollReactor::new(Arc::clone(counters)))),
        #[cfg(target_os = "linux")]
        ReactorChoice::Epoll => Ok(Box::new(EpollReactor::new(Arc::clone(counters))?)),
        #[cfg(not(target_os = "linux"))]
        ReactorChoice::Epoll => Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "the epoll reactor requires Linux; use ReactorChoice::Poll",
        )),
        ReactorChoice::Auto => unreachable!("Auto resolved above"),
    }
}

/// The pure half of resolution: `Auto` consults the (already read)
/// `SIZEL_NET_REACTOR` value, explicit choices ignore it; unknown env
/// values are errors, never a silent fallback.
fn resolve_choice(choice: ReactorChoice, env: Option<&str>) -> io::Result<ReactorChoice> {
    match choice {
        ReactorChoice::Auto => match env {
            Some("poll") => Ok(ReactorChoice::Poll),
            Some("epoll") => Ok(ReactorChoice::Epoll),
            Some(v) => Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("SIZEL_NET_REACTOR must be `poll` or `epoll`, got `{v}`"),
            )),
            None if cfg!(target_os = "linux") => Ok(ReactorChoice::Epoll),
            None => Ok(ReactorChoice::Poll),
        },
        explicit => Ok(explicit),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters() -> Arc<NetCounters> {
        Arc::new(NetCounters::default())
    }

    /// Every backend available here, for the doorbell-protocol tests
    /// that are identical across them.
    fn backends(c: &Arc<NetCounters>) -> Vec<Box<dyn Reactor>> {
        let mut v: Vec<Box<dyn Reactor>> = vec![Box::new(PollReactor::new(Arc::clone(c)))];
        #[cfg(target_os = "linux")]
        v.push(Box::new(EpollReactor::new(Arc::clone(c)).expect("epoll reactor")));
        v
    }

    #[test]
    fn a_ring_before_the_wait_is_never_lost() {
        let c = counters();
        for mut r in backends(&c) {
            let hub = Arc::clone(r.hub());
            let mut events = Vec::new();
            // Ring lands while armed, before the wait begins: the wait
            // must return woken immediately (eventfd stays readable /
            // the flag stays set), not block out the full timeout.
            hub.arm();
            hub.ring();
            let start = std::time::Instant::now();
            let woke = r.wait(&mut events, Duration::from_secs(5), false);
            assert!(woke, "{:?} lost a pre-wait ring", r.kind());
            assert!(
                start.elapsed() < Duration::from_secs(1),
                "{:?} waited out the timeout despite a pending ring",
                r.kind()
            );
            hub.disarm();
        }
    }

    #[test]
    fn a_concurrent_ring_wakes_the_wait() {
        let c = counters();
        for mut r in backends(&c) {
            let hub = Arc::clone(r.hub());
            hub.arm();
            let ringer = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                hub.notify(TOKEN_BASE);
            });
            let start = std::time::Instant::now();
            let mut events = Vec::new();
            // Epoll parks the full timeout and is woken by the ring;
            // poll sweeps in 300µs ticks and must observe it on one of
            // them. Either way the ring ends the waiting well before
            // the deadline.
            let mut woke = false;
            while !woke && start.elapsed() < Duration::from_secs(10) {
                woke = r.wait(&mut events, Duration::from_secs(10), false);
            }
            ringer.join().expect("ringer");
            assert!(woke, "{:?} slept through a concurrent ring", r.kind());
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "{:?} took {:?} to observe the ring",
                r.kind(),
                start.elapsed()
            );
            assert!(r.hub().has_pending());
            let mut out = Vec::new();
            r.hub().drain_pending(&mut out);
            assert_eq!(out, vec![TOKEN_BASE]);
            r.hub().disarm();
        }
    }

    #[test]
    fn rings_coalesce_to_one_bell_write_per_sleep() {
        let c = counters();
        for r in backends(&c) {
            let hub = r.hub();
            let rings_before = NetCounters::get(&c.doorbell_rings);
            let coalesced_before = NetCounters::get(&c.doorbell_coalesced);
            hub.arm();
            // A burst of replies completing while the I/O thread sleeps:
            // the first notify disarms and writes the bell, the rest see
            // the disarmed flag and coalesce.
            for t in 0..8 {
                hub.notify(TOKEN_BASE + t);
            }
            assert_eq!(
                NetCounters::get(&c.doorbell_rings) - rings_before,
                1,
                "{:?}: exactly one physical bell write per burst",
                r.kind()
            );
            assert_eq!(NetCounters::get(&c.doorbell_coalesced) - coalesced_before, 7);
            let mut out = Vec::new();
            hub.drain_pending(&mut out);
            assert_eq!(out.len(), 8, "coalescing must not drop completions");
            hub.disarm();
        }
    }

    #[test]
    fn disarmed_notifies_queue_without_ringing() {
        let c = counters();
        for r in backends(&c) {
            let hub = r.hub();
            let rings_before = NetCounters::get(&c.doorbell_rings);
            // I/O thread awake (disarmed): completions queue silently.
            hub.notify(TOKEN_BASE);
            assert_eq!(NetCounters::get(&c.doorbell_rings), rings_before);
            assert!(hub.has_pending());
            let mut out = Vec::new();
            hub.drain_pending(&mut out);
            assert!(!hub.has_pending());
        }
    }

    #[test]
    fn poll_wait_sleeps_only_when_nothing_progressed() {
        let c = counters();
        let mut r = PollReactor::new(Arc::clone(&c));
        r.register(0, TOKEN_LISTENER).expect("register");
        r.register(0, TOKEN_BASE).expect("register");
        let mut events = Vec::new();

        // Progressed pass: no sleep, full synthetic sweep.
        let start = std::time::Instant::now();
        let woke = r.wait(&mut events, Duration::from_secs(1), true);
        assert!(start.elapsed() < Duration::from_millis(100));
        assert!(!woke);
        let tokens: Vec<usize> = events.iter().map(|e| e.token).collect();
        assert_eq!(tokens, vec![TOKEN_LISTENER, TOKEN_BASE]);
        assert!(events.iter().all(|e| e.readable && e.writable));

        // Idle pass: sleeps the (condvar) idle tick, still sweeps.
        let woke = r.wait(&mut events, Duration::from_secs(1), false);
        assert!(!woke);
        assert_eq!(events.len(), 2);

        // Deregistered tokens leave the sweep.
        r.deregister(0, TOKEN_BASE);
        r.wait(&mut events, Duration::from_secs(1), true);
        assert_eq!(events.len(), 1);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_reports_only_ready_fds() {
        use std::io::Write;
        use std::os::fd::AsRawFd;

        let c = counters();
        let mut r = EpollReactor::new(Arc::clone(&c)).expect("epoll reactor");
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.set_nonblocking(true).expect("nonblocking");
        r.register(listener.as_raw_fd(), TOKEN_LISTENER).expect("register");

        // Quiet socket: tick expiry, no events, not a wakeup.
        let mut events = Vec::new();
        let woke = r.wait(&mut events, Duration::from_millis(10), false);
        assert!(!woke);
        assert!(events.is_empty());

        // A connection attempt makes the listener readable.
        let mut peer =
            std::net::TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        let woke = r.wait(&mut events, Duration::from_secs(5), false);
        assert!(woke);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, TOKEN_LISTENER);
        assert!(events[0].readable && !events[0].writable);

        // Accept, register the conn, and see EPOLLIN only when bytes land.
        let (conn, _) = listener.accept().expect("accept");
        conn.set_nonblocking(true).expect("nonblocking");
        r.register(conn.as_raw_fd(), TOKEN_BASE).expect("register conn");
        peer.write_all(b"hello").expect("write");
        let woke = r.wait(&mut events, Duration::from_secs(5), false);
        assert!(woke);
        assert!(events.iter().any(|e| e.token == TOKEN_BASE && e.readable));

        // EPOLLOUT toggling: an idle loopback socket is instantly
        // writable, but only once write interest is on.
        assert!(!events.iter().any(|e| e.token == TOKEN_BASE && e.writable));
        r.set_writable(conn.as_raw_fd(), TOKEN_BASE, true).expect("toggle on");
        let woke = r.wait(&mut events, Duration::from_secs(5), false);
        assert!(woke);
        assert!(events.iter().any(|e| e.token == TOKEN_BASE && e.writable));
        r.set_writable(conn.as_raw_fd(), TOKEN_BASE, false).expect("toggle off");
        r.deregister(conn.as_raw_fd(), TOKEN_BASE);
    }

    #[test]
    fn env_override_rejects_unknown_backends() {
        // The pure resolver, no process-global env mutation needed.
        assert_eq!(
            resolve_choice(ReactorChoice::Auto, Some("poll")).expect("poll"),
            ReactorChoice::Poll
        );
        assert_eq!(
            resolve_choice(ReactorChoice::Auto, Some("epoll")).expect("epoll"),
            ReactorChoice::Epoll
        );
        let err = resolve_choice(ReactorChoice::Auto, Some("kqueue")).expect_err("unknown");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        // Explicit choices never consult the env — even a garbage value
        // is ignored.
        assert_eq!(
            resolve_choice(ReactorChoice::Poll, Some("garbage")).expect("explicit"),
            ReactorChoice::Poll
        );
        // And the built backends report their own kind.
        let c = counters();
        assert_eq!(build_reactor(ReactorChoice::Poll, &c).expect("poll").kind(), ReactorKind::Poll);
        #[cfg(target_os = "linux")]
        assert_eq!(
            build_reactor(ReactorChoice::Epoll, &c).expect("epoll").kind(),
            ReactorKind::Epoll
        );
    }
}
