//! `sizel-proto-doc` — prints the wire-protocol reference table
//! (markdown) generated from the `Opcode` enum, so DESIGN.md §9.1 can
//! be regenerated instead of hand-maintained:
//!
//! ```text
//! cargo run -p sizel-net --bin sizel-proto-doc
//! ```
//!
//! A test pins DESIGN.md against this exact output.

fn main() {
    print!("{}", sizel_net::protocol_reference_table());
}
