//! `sizel-netcat` — a command-line client for a running sizel-net
//! server.
//!
//! ```text
//! sizel-netcat <addr> ping
//! sizel-netcat <addr> stats
//! sizel-netcat <addr> query <keywords> [l]
//! ```
//!
//! Exit status 0 on a successful reply, 1 on usage errors, 2 on a
//! transport/protocol failure, 3 on an in-band `Error`/`Busy` reply.

use std::process::ExitCode;

use sizel_core::engine::QueryOptions;
use sizel_net::{NetClient, Reply};

fn usage() -> ExitCode {
    eprintln!("usage: sizel-netcat <addr> ping|stats|query <keywords> [l]");
    ExitCode::from(1)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (addr, cmd) = match (args.first(), args.get(1)) {
        (Some(a), Some(c)) => (a.clone(), c.clone()),
        _ => return usage(),
    };
    let mut client = match NetClient::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("connect {addr}: {e}");
            return ExitCode::from(2);
        }
    };
    let outcome = match cmd.as_str() {
        "ping" => client.ping().map(|()| {
            println!("pong");
        }),
        "stats" => client.stats().map(|text| {
            print!("{text}");
        }),
        "query" => {
            let Some(keywords) = args.get(2).cloned() else {
                return usage();
            };
            let mut opts = QueryOptions::default();
            if let Some(l) = args.get(3) {
                match l.parse() {
                    Ok(l) => opts.l = l,
                    Err(_) => return usage(),
                }
            }
            match client.query(&[(keywords, opts)]) {
                Ok(Reply::Results { epoch, results }) => {
                    println!("epoch {epoch}");
                    for (i, per_request) in results.iter().enumerate() {
                        for r in per_request {
                            println!(
                                "[{i}] {} Im={:.6} |S|={} (from OS of {})",
                                r.ds_label,
                                r.importance,
                                r.summary.len(),
                                r.input_os_size
                            );
                        }
                    }
                    Ok(())
                }
                Ok(Reply::Busy { reason }) => {
                    eprintln!("server busy: {reason:?}");
                    return ExitCode::from(3);
                }
                Ok(Reply::Error { code, message }) => {
                    eprintln!("server error {code:?}: {message}");
                    return ExitCode::from(3);
                }
                Ok(other) => {
                    eprintln!("unexpected reply: {other:?}");
                    return ExitCode::from(2);
                }
                Err(e) => Err(e),
            }
        }
        _ => return usage(),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}
