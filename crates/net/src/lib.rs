//! # sizel-net — the TCP front-end
//!
//! A network face for the sharded serving stack: a length-prefixed
//! binary protocol over plain TCP carrying keyword queries, per-DS
//! summaries, mutation batches, and metrics scrapes into a
//! [`ClusterRouter`](sizel_cluster::ClusterRouter), with
//! per-connection **pipelining**, a bounded **in-flight budget**,
//! explicit **load shedding** (`Busy` frames — never a silent drop),
//! and a text-exposition **metrics** page served both in-band and to
//! plain-HTTP scrapers.
//!
//! The stack, bottom to top:
//!
//! * [`frame`] — the 16-byte versioned envelope and opcode registry
//!   (the protocol reference table in DESIGN.md §9 is generated from
//!   it);
//! * [`wire`] — the canonical little-endian payload codec, whose
//!   deterministic encoding is what the loopback suite uses to prove
//!   the server **byte-identical** to in-process router calls at every
//!   epoch;
//! * [`reactor`] — the readiness backends: a raw-syscall
//!   epoll + eventfd reactor on Linux (doorbell wakeups from the
//!   dispatch workers delete the idle-sleep latency floor) with the
//!   portable sleep-poll sweep retained behind the same trait as a
//!   fallback and differential oracle;
//! * [`buf`] — the free-list frame-buffer pool that makes the reply
//!   path allocation-free at steady state (DESIGN.md §9.6);
//! * [`server`] — the readiness-driven I/O thread plus a
//!   dispatch-worker pool over the serve layer's bounded MPMC queue,
//!   with three-gate admission (in-flight budget, outbox byte cap,
//!   queue capacity), an inline **fast path** answering cheap and
//!   cache-hit requests on the I/O thread itself, vectored outbox
//!   flushes, idle-connection reaping, and `catch_unwind` panic
//!   containment;
//! * [`client`] — the blocking pipelining client (also behind the
//!   `sizel-netcat` binary);
//! * [`metrics`] — lock-free counters and the exposition renderer.

pub mod buf;
pub mod client;
pub mod frame;
pub mod metrics;
pub mod reactor;
pub mod server;
#[cfg(target_os = "linux")]
mod sys;
pub mod wire;

pub use buf::BufPool;
pub use client::{ClientError, NetClient};
pub use frame::{protocol_reference_table, BusyReason, ErrorCode, FrameError, Opcode};
pub use metrics::{render_metrics, NetCounters};
pub use reactor::{ReactorChoice, ReactorKind};
pub use server::{NetConfig, NetServer};
pub use wire::{Reply, Request, WireError, WireOsNode, WireResult};
