//! The framing layer: a length-prefixed binary envelope around every
//! request and reply (DESIGN.md §9.1 is generated from this module —
//! see [`protocol_reference_table`]).
//!
//! ## Header layout (16 bytes, little-endian)
//!
//! ```text
//! offset  size  field
//!      0     2  magic   0x534C ("SL")
//!      2     1  version currently 1; mismatches are a protocol error
//!      3     1  opcode  see [`Opcode`]
//!      4     8  req_id  caller-chosen; echoed verbatim in the reply
//!     12     4  len     payload length in bytes (may be 0)
//! ```
//!
//! `req_id` is what makes per-connection pipelining work: a client may
//! have many requests in flight and the server may answer them in any
//! order (worker pools don't preserve submission order across opcodes),
//! so every reply carries the id of the request it answers.
//!
//! The payload length is bounded by [`MAX_FRAME_LEN`]; a header
//! announcing more is rejected *before* any allocation — a four-byte
//! length field must never size a buffer on its own say-so.

use std::io::{self, Read, Write};

/// `0x534C` — "SL" in ASCII, little-endian on the wire.
pub const MAGIC: u16 = 0x534C;

/// Current protocol version; bumped on any incompatible layout change.
pub const VERSION: u8 = 1;

/// Header size in bytes.
pub const HEADER_LEN: usize = 16;

/// Upper bound on a frame's payload. Chosen far above any legitimate
/// frame (a full result set over the evaluation databases is < 1 MiB)
/// and far below anything that could be used to balloon server memory.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Every frame kind in the protocol. Requests flow client → server and
/// have the high bit clear; replies flow server → client and have it
/// set. The doc comment's first sentence is the wire-reference
/// description (see [`protocol_reference_table`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// Liveness probe; empty payload, answered with `Pong`.
    Ping = 0x01,
    /// A batch of keyword queries; answered with `Results`.
    Query = 0x02,
    /// One `(t_DS, options)` summary request; answered with `Summary`.
    Summarize = 0x03,
    /// A batch of mutations to apply cluster-wide; answered with `Applied`.
    ApplyBatch = 0x04,
    /// Metrics snapshot request; answered with `StatsText`.
    Stats = 0x05,
    /// Reply to `Ping`; empty payload.
    Pong = 0x81,
    /// Reply to `Query`: the serving epoch plus every request's ranked results.
    Results = 0x82,
    /// Reply to `Summarize`: the serving epoch plus one summary.
    Summary = 0x83,
    /// Reply to `ApplyBatch`: the cluster's new epoch.
    Applied = 0x84,
    /// Reply to `Stats`: the text-exposition metrics page.
    StatsText = 0x85,
    /// Load shed: the request was NOT executed; retry later.
    Busy = 0x86,
    /// The request failed; carries an error code and a message.
    Error = 0x87,
}

impl Opcode {
    /// Every opcode, requests first then replies, in wire order.
    pub const ALL: [Opcode; 12] = [
        Opcode::Ping,
        Opcode::Query,
        Opcode::Summarize,
        Opcode::ApplyBatch,
        Opcode::Stats,
        Opcode::Pong,
        Opcode::Results,
        Opcode::Summary,
        Opcode::Applied,
        Opcode::StatsText,
        Opcode::Busy,
        Opcode::Error,
    ];

    /// Decodes a wire byte.
    pub fn from_u8(b: u8) -> Option<Opcode> {
        Opcode::ALL.into_iter().find(|op| *op as u8 == b)
    }

    /// True for client → server frames.
    pub fn is_request(self) -> bool {
        (self as u8) & 0x80 == 0
    }

    /// The mnemonic printed in the protocol reference.
    pub fn name(self) -> &'static str {
        match self {
            Opcode::Ping => "Ping",
            Opcode::Query => "Query",
            Opcode::Summarize => "Summarize",
            Opcode::ApplyBatch => "ApplyBatch",
            Opcode::Stats => "Stats",
            Opcode::Pong => "Pong",
            Opcode::Results => "Results",
            Opcode::Summary => "Summary",
            Opcode::Applied => "Applied",
            Opcode::StatsText => "StatsText",
            Opcode::Busy => "Busy",
            Opcode::Error => "Error",
        }
    }

    /// One-line wire-reference description (mirrors the doc comments).
    pub fn describe(self) -> &'static str {
        match self {
            Opcode::Ping => "Liveness probe; empty payload, answered with `Pong`",
            Opcode::Query => "A batch of keyword queries; answered with `Results`",
            Opcode::Summarize => "One `(t_DS, options)` summary request; answered with `Summary`",
            Opcode::ApplyBatch => {
                "A batch of mutations to apply cluster-wide; answered with `Applied`"
            }
            Opcode::Stats => "Metrics snapshot request; answered with `StatsText`",
            Opcode::Pong => "Reply to `Ping`; empty payload",
            Opcode::Results => {
                "Reply to `Query`: the serving epoch plus every request's ranked results"
            }
            Opcode::Summary => "Reply to `Summarize`: the serving epoch plus one summary",
            Opcode::Applied => "Reply to `ApplyBatch`: the cluster's new epoch",
            Opcode::StatsText => "Reply to `Stats`: the text-exposition metrics page",
            Opcode::Busy => "Load shed: the request was NOT executed; retry later",
            Opcode::Error => "The request failed; carries an error code and a message",
        }
    }
}

/// Error codes carried in an `Error` frame's payload (first byte).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The payload did not decode against the opcode's schema.
    MalformedPayload = 1,
    /// The header's opcode byte names no request.
    UnknownOpcode = 2,
    /// A well-formed request the cluster rejected (unknown tenant,
    /// wrong-mode operation, storage validation failure).
    BadRequest = 3,
    /// The handler panicked or otherwise failed internally; the
    /// connection stays usable.
    Internal = 4,
    /// The envelope itself was wrong (bad magic, unsupported version,
    /// oversized length): the framing is no longer trustworthy, so the
    /// server closes the connection after this reply.
    Protocol = 5,
}

impl ErrorCode {
    /// Decodes a wire byte.
    pub fn from_u8(b: u8) -> Option<ErrorCode> {
        [
            ErrorCode::MalformedPayload,
            ErrorCode::UnknownOpcode,
            ErrorCode::BadRequest,
            ErrorCode::Internal,
            ErrorCode::Protocol,
        ]
        .into_iter()
        .find(|c| *c as u8 == b)
    }
}

/// Why a `Busy` frame was sent (first payload byte). In both cases the
/// request was rejected *before* execution — a shed request never has
/// partial effects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum BusyReason {
    /// The connection's in-flight budget was full.
    InflightBudget = 0,
    /// The dispatch queue was full (server-wide pressure).
    QueueFull = 1,
    /// The connection's outbox byte cap was hit (the peer has stopped
    /// reading its replies).
    OutboxFull = 2,
}

impl BusyReason {
    /// Decodes a wire byte.
    pub fn from_u8(b: u8) -> Option<BusyReason> {
        [BusyReason::InflightBudget, BusyReason::QueueFull, BusyReason::OutboxFull]
            .into_iter()
            .find(|r| *r as u8 == b)
    }
}

/// A decoded frame header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Header {
    /// The frame kind.
    pub opcode: Opcode,
    /// Caller-chosen correlation id, echoed in the reply.
    pub req_id: u64,
    /// Payload length in bytes.
    pub len: u32,
}

/// What can go wrong decoding an envelope. Everything here is a
/// *protocol* failure (the framing is broken); payload-level failures
/// are reported in-band via `Error` frames instead.
#[derive(Debug)]
pub enum FrameError {
    /// The magic bytes were wrong — this is not a sizel-net peer.
    BadMagic(u16),
    /// The version byte names a protocol we don't speak.
    BadVersion(u8),
    /// The opcode byte names no frame kind.
    UnknownOpcode(u8),
    /// The announced payload length exceeds [`MAX_FRAME_LEN`].
    Oversized(u32),
    /// The underlying stream failed or ended mid-frame.
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic(m) => write!(f, "bad magic 0x{m:04x} (want 0x{MAGIC:04x})"),
            FrameError::BadVersion(v) => write!(f, "unsupported version {v} (want {VERSION})"),
            FrameError::UnknownOpcode(b) => write!(f, "unknown opcode 0x{b:02x}"),
            FrameError::Oversized(n) => {
                write!(f, "announced payload of {n} bytes exceeds the {MAX_FRAME_LEN} cap")
            }
            FrameError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Encodes a header into its 16-byte wire form.
pub fn encode_header(h: Header) -> [u8; HEADER_LEN] {
    let mut buf = [0u8; HEADER_LEN];
    buf[0..2].copy_from_slice(&MAGIC.to_le_bytes());
    buf[2] = VERSION;
    buf[3] = h.opcode as u8;
    buf[4..12].copy_from_slice(&h.req_id.to_le_bytes());
    buf[12..16].copy_from_slice(&h.len.to_le_bytes());
    buf
}

/// Decodes a 16-byte header, validating magic, version, opcode, and the
/// length cap — all before the caller allocates anything for the payload.
pub fn decode_header(buf: &[u8; HEADER_LEN]) -> Result<Header, FrameError> {
    let magic = u16::from_le_bytes([buf[0], buf[1]]);
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    if buf[2] != VERSION {
        return Err(FrameError::BadVersion(buf[2]));
    }
    let opcode = Opcode::from_u8(buf[3]).ok_or(FrameError::UnknownOpcode(buf[3]))?;
    let req_id = u64::from_le_bytes(buf[4..12].try_into().expect("8 bytes"));
    let len = u32::from_le_bytes(buf[12..16].try_into().expect("4 bytes"));
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversized(len));
    }
    Ok(Header { opcode, req_id, len })
}

/// Opens a frame in `buf` (clearing it): writes the full 16-byte header
/// with a zero length, leaving the cursor where payload bytes go. The
/// caller appends the payload with the `wire::encode_*_into` family and
/// seals the frame with [`finish_frame`]. Paired, the two write header
/// and payload exactly once into one (typically pooled) buffer — the
/// zero-copy replacement for build-payload-then-[`encode_frame`].
pub fn begin_frame(buf: &mut Vec<u8>, opcode: Opcode, req_id: u64) {
    buf.clear();
    buf.extend_from_slice(&encode_header(Header { opcode, req_id, len: 0 }));
}

/// Seals a frame opened by [`begin_frame`]: patches the opcode byte and
/// the length field in place. The opcode is patched (not just inherited
/// from `begin_frame`) because a dispatch worker learns the reply kind
/// only *after* executing the request — it opens the frame with a
/// placeholder, serializes whichever reply the handler produced, and
/// stamps the real opcode here.
pub fn finish_frame(buf: &mut [u8], opcode: Opcode) {
    debug_assert!(buf.len() >= HEADER_LEN, "finish_frame on a buffer with no header");
    let payload_len = buf.len() - HEADER_LEN;
    debug_assert!(payload_len <= MAX_FRAME_LEN as usize);
    buf[3] = opcode as u8;
    buf[12..16].copy_from_slice(&(payload_len as u32).to_le_bytes());
}

/// Serializes a whole frame (header + payload) into one buffer — the
/// unit the server's outbox and the client's pipeline queue move around.
/// Implemented over [`begin_frame`]/[`finish_frame`] so the two paths
/// cannot drift; the pooled path skips this function's payload copy.
pub fn encode_frame(opcode: Opcode, req_id: u64, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
    begin_frame(&mut buf, opcode, req_id);
    buf.extend_from_slice(payload);
    finish_frame(&mut buf, opcode);
    buf
}

/// Blocking frame read from a stream (the client side; the server's
/// nonblocking loop accumulates bytes itself and uses
/// [`decode_header`] directly).
pub fn read_frame<R: Read>(r: &mut R) -> Result<(Header, Vec<u8>), FrameError> {
    let mut head = [0u8; HEADER_LEN];
    r.read_exact(&mut head)?;
    let header = decode_header(&head)?;
    let mut payload = vec![0u8; header.len as usize];
    r.read_exact(&mut payload)?;
    Ok((header, payload))
}

/// Blocking frame write to a stream.
pub fn write_frame<W: Write>(
    w: &mut W,
    opcode: Opcode,
    req_id: u64,
    payload: &[u8],
) -> io::Result<()> {
    w.write_all(&encode_frame(opcode, req_id, payload))
}

/// The generated protocol reference: one markdown table row per opcode,
/// derived from [`Opcode::ALL`] so the docs cannot drift from the wire
/// enum (DESIGN.md §9.1 embeds this verbatim; a test pins the two
/// together).
pub fn protocol_reference_table() -> String {
    let mut out = String::new();
    out.push_str("| opcode | byte | direction | description |\n");
    out.push_str("|--------|------|-----------|-------------|\n");
    for op in Opcode::ALL {
        let dir = if op.is_request() { "request" } else { "reply" };
        out.push_str(&format!(
            "| `{}` | `0x{:02X}` | {} | {} |\n",
            op.name(),
            op as u8,
            dir,
            op.describe()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrips() {
        for op in Opcode::ALL {
            let h = Header { opcode: op, req_id: 0xDEAD_BEEF_CAFE_F00D, len: 4242 };
            let decoded = decode_header(&encode_header(h)).expect("roundtrip");
            assert_eq!(decoded, h);
        }
    }

    #[test]
    fn envelope_validation_rejects_each_field() {
        let good = encode_header(Header { opcode: Opcode::Ping, req_id: 1, len: 0 });
        let mut bad_magic = good;
        bad_magic[0] = 0xFF;
        assert!(matches!(decode_header(&bad_magic), Err(FrameError::BadMagic(_))));
        let mut bad_version = good;
        bad_version[2] = 99;
        assert!(matches!(decode_header(&bad_version), Err(FrameError::BadVersion(99))));
        let mut bad_opcode = good;
        bad_opcode[3] = 0x7F;
        assert!(matches!(decode_header(&bad_opcode), Err(FrameError::UnknownOpcode(0x7F))));
        let mut oversized = good;
        oversized[12..16].copy_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        assert!(matches!(decode_header(&oversized), Err(FrameError::Oversized(_))));
    }

    #[test]
    fn opcode_direction_follows_the_high_bit() {
        for op in Opcode::ALL {
            assert_eq!(op.is_request(), (op as u8) < 0x80, "{op:?}");
            assert_eq!(Opcode::from_u8(op as u8), Some(op));
        }
        assert_eq!(Opcode::from_u8(0x00), None);
        assert_eq!(Opcode::from_u8(0xFF), None);
    }

    #[test]
    fn reference_table_covers_every_opcode() {
        let table = protocol_reference_table();
        for op in Opcode::ALL {
            assert!(table.contains(op.name()), "table missing {}", op.name());
            assert!(table.contains(&format!("0x{:02X}", op as u8)));
        }
        assert_eq!(table.lines().count(), 2 + Opcode::ALL.len());
    }

    #[test]
    fn frame_read_write_roundtrips_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, Opcode::Results, 7, b"hello").expect("write");
        let (h, payload) = read_frame(&mut buf.as_slice()).expect("read");
        assert_eq!((h.opcode, h.req_id), (Opcode::Results, 7));
        assert_eq!(payload, b"hello");
    }

    #[test]
    fn begin_finish_matches_encode_frame_bytes() {
        let mut pooled = b"stale garbage from a previous frame".to_vec();
        begin_frame(&mut pooled, Opcode::Error, 42); // worker's placeholder opcode
        pooled.extend_from_slice(b"ranked results");
        finish_frame(&mut pooled, Opcode::Results); // real reply kind, learned late
        assert_eq!(pooled, encode_frame(Opcode::Results, 42, b"ranked results"));
        let h = decode_header(pooled[..HEADER_LEN].try_into().unwrap()).expect("valid");
        assert_eq!((h.opcode, h.req_id, h.len), (Opcode::Results, 42, 14));
    }

    #[test]
    fn begin_finish_handles_empty_payloads() {
        let mut buf = Vec::new();
        begin_frame(&mut buf, Opcode::Pong, 9);
        finish_frame(&mut buf, Opcode::Pong);
        assert_eq!(buf, encode_frame(Opcode::Pong, 9, b""));
        assert_eq!(buf.len(), HEADER_LEN);
    }

    #[test]
    fn truncated_streams_surface_as_io_errors() {
        let full = encode_frame(Opcode::Query, 3, b"payload");
        for cut in [0, 1, HEADER_LEN - 1, HEADER_LEN + 2] {
            let err = read_frame(&mut &full[..cut]).expect_err("truncated");
            assert!(matches!(err, FrameError::Io(_)), "cut at {cut}: {err}");
        }
    }
}
