//! Front-end observability: lock-free counters incremented on the hot
//! paths, rendered on demand into a text-exposition page (DESIGN.md
//! §9.5 lists every series).
//!
//! The page is served two ways from the same renderer: as a `StatsText`
//! reply to a `Stats` frame, and as a plain-HTTP `GET` response for
//! scrapers that speak no sizel-net (the server recognizes an ASCII
//! `GET ` where the frame magic would be — the magic bytes `"LS"` make
//! the two unambiguous on the first two octets).
//!
//! All `*_total` series are monotonic counters — *rates* (e.g. QPS per
//! tenant) are the scraper's division, which is why the page exposes
//! raw `queries_served_total` per shard rather than a decaying gauge.
//! Gauges (`connections_live`, `queue_depth`, `refresh_lag`) are
//! instantaneous reads at render time.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

use sizel_cluster::ClusterRouter;

use crate::reactor::ReactorKind;

/// The front-end's own counters (cluster/serve counters are read from
/// the router at render time, not duplicated here).
#[derive(Debug, Default)]
pub struct NetCounters {
    /// Connections ever accepted.
    pub connections_opened: AtomicU64,
    /// Connections currently open.
    pub connections_live: AtomicU64,
    /// Request frames fully received and admitted to decode.
    pub frames_in: AtomicU64,
    /// Reply frames enqueued for write (every admitted request produces
    /// exactly one, as does every shed and every error).
    pub frames_out: AtomicU64,
    /// Requests shed because the connection's in-flight budget was full.
    pub shed_inflight: AtomicU64,
    /// Requests shed because the dispatch queue was full.
    pub shed_queue: AtomicU64,
    /// Requests shed because the connection's outbox byte cap was hit
    /// (the slow-reader gate).
    pub shed_outbox: AtomicU64,
    /// Connections closed by the idle reaper.
    pub idle_reaped: AtomicU64,
    /// Reactor wakeups (readiness or doorbell) that moved bytes.
    pub reactor_wakeups: AtomicU64,
    /// Reactor wakeups that moved nothing (e.g. a doorbell already
    /// serviced in the previous pass).
    pub reactor_spurious: AtomicU64,
    /// Physical doorbell writes (eventfd write / condvar notify).
    pub doorbell_rings: AtomicU64,
    /// Doorbell notifies coalesced into an already-pending ring (the
    /// I/O thread was awake or a ring was already in flight).
    pub doorbell_coalesced: AtomicU64,
    /// Write-interest (EPOLLOUT) registration toggles.
    pub epollout_toggles: AtomicU64,
    /// Requests answered inline on the I/O thread (Ping/Stats, or a
    /// Query/Summarize served wholly from the summary cache).
    pub fastpath_hits: AtomicU64,
    /// Fast-path-eligible requests that fell back to the dispatch queue
    /// (cache miss, lock contention, or inline budget exhausted).
    pub fastpath_fallbacks: AtomicU64,
    /// Frame buffers served from the pool's free list.
    pub buf_pool_hits: AtomicU64,
    /// Frame buffers freshly allocated because the free list was empty.
    pub buf_pool_misses: AtomicU64,
    /// Frame buffers returned to the free list after their frame was
    /// fully written (or their payload dispatched).
    pub buf_pool_recycled: AtomicU64,
    /// Which reactor backend serves this instance (a `ReactorKind` as
    /// `u8`; 0 until `bind` resolves it).
    pub reactor_backend: AtomicU8,
    /// `Error` replies sent, by coarse class.
    pub errors_malformed: AtomicU64,
    /// `Error(Protocol)` replies: broken envelopes (connection closed after).
    pub errors_protocol: AtomicU64,
    /// `Error(Internal)` replies: a handler panicked.
    pub errors_internal: AtomicU64,
    /// `Error(BadRequest)` replies: well-formed but rejected by the cluster.
    pub errors_bad_request: AtomicU64,
    /// Plain-HTTP `/metrics` scrapes served.
    pub http_scrapes: AtomicU64,
}

impl NetCounters {
    /// Relaxed increment — every call site is a statistic, never a
    /// synchronization point.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Relaxed read.
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

fn line(out: &mut String, name: &str, labels: &str, value: impl std::fmt::Display) {
    if labels.is_empty() {
        out.push_str(&format!("{name} {value}\n"));
    } else {
        out.push_str(&format!("{name}{{{labels}}} {value}\n"));
    }
}

/// Renders the whole metrics page: front-end counters, per-shard serve
/// counters (labelled with the tenant name in multi-tenant mode), cache
/// hit ratios, and the refresh worker's per-shard epoch lag.
pub fn render_metrics(counters: &NetCounters, router: &ClusterRouter) -> String {
    let mut out = String::with_capacity(2048);

    // Front-end.
    line(&mut out, "sizel_net_connections_live", "", NetCounters::get(&counters.connections_live));
    line(
        &mut out,
        "sizel_net_connections_opened_total",
        "",
        NetCounters::get(&counters.connections_opened),
    );
    line(&mut out, "sizel_net_frames_in_total", "", NetCounters::get(&counters.frames_in));
    line(&mut out, "sizel_net_frames_out_total", "", NetCounters::get(&counters.frames_out));
    line(
        &mut out,
        "sizel_net_shed_total",
        "reason=\"inflight_budget\"",
        NetCounters::get(&counters.shed_inflight),
    );
    line(
        &mut out,
        "sizel_net_shed_total",
        "reason=\"queue_full\"",
        NetCounters::get(&counters.shed_queue),
    );
    line(
        &mut out,
        "sizel_net_shed_total",
        "reason=\"outbox_full\"",
        NetCounters::get(&counters.shed_outbox),
    );
    line(&mut out, "sizel_net_idle_reaped_total", "", NetCounters::get(&counters.idle_reaped));
    let backend = ReactorKind::from_u8(counters.reactor_backend.load(Ordering::Relaxed))
        .map_or("unknown", ReactorKind::name);
    line(&mut out, "sizel_net_reactor", &format!("backend=\"{backend}\""), 1);
    line(
        &mut out,
        "sizel_net_reactor_wakeups_total",
        "",
        NetCounters::get(&counters.reactor_wakeups),
    );
    line(
        &mut out,
        "sizel_net_reactor_spurious_wakeups_total",
        "",
        NetCounters::get(&counters.reactor_spurious),
    );
    line(
        &mut out,
        "sizel_net_doorbell_rings_total",
        "",
        NetCounters::get(&counters.doorbell_rings),
    );
    line(
        &mut out,
        "sizel_net_doorbell_coalesced_total",
        "",
        NetCounters::get(&counters.doorbell_coalesced),
    );
    line(
        &mut out,
        "sizel_net_epollout_toggles_total",
        "",
        NetCounters::get(&counters.epollout_toggles),
    );
    line(
        &mut out,
        "sizel_net_fastpath_total",
        "result=\"hit\"",
        NetCounters::get(&counters.fastpath_hits),
    );
    line(
        &mut out,
        "sizel_net_fastpath_total",
        "result=\"fallback\"",
        NetCounters::get(&counters.fastpath_fallbacks),
    );
    line(
        &mut out,
        "sizel_net_buf_pool_total",
        "event=\"hit\"",
        NetCounters::get(&counters.buf_pool_hits),
    );
    line(
        &mut out,
        "sizel_net_buf_pool_total",
        "event=\"miss\"",
        NetCounters::get(&counters.buf_pool_misses),
    );
    line(
        &mut out,
        "sizel_net_buf_pool_total",
        "event=\"recycled\"",
        NetCounters::get(&counters.buf_pool_recycled),
    );
    line(
        &mut out,
        "sizel_net_errors_total",
        "code=\"malformed\"",
        NetCounters::get(&counters.errors_malformed),
    );
    line(
        &mut out,
        "sizel_net_errors_total",
        "code=\"protocol\"",
        NetCounters::get(&counters.errors_protocol),
    );
    line(
        &mut out,
        "sizel_net_errors_total",
        "code=\"internal\"",
        NetCounters::get(&counters.errors_internal),
    );
    line(
        &mut out,
        "sizel_net_errors_total",
        "code=\"bad_request\"",
        NetCounters::get(&counters.errors_bad_request),
    );
    line(&mut out, "sizel_net_http_scrapes_total", "", NetCounters::get(&counters.http_scrapes));

    // Per-shard serve and cluster state. In multi-tenant mode each shard
    // IS a tenant, so the tenant name labels its series — this is the
    // per-tenant QPS/cache view; in partitioned mode the shard index
    // alone identifies the replica.
    let tenants = router.tenant_names();
    let tenant_of = |shard: usize| -> Option<&str> {
        tenants.iter().find(|(_, s)| *s == shard).map(|(n, _)| n.as_str())
    };
    let stats = router.stats();
    for (i, per_shard) in stats.per_shard.iter().enumerate() {
        let labels = match tenant_of(i) {
            Some(t) => format!("shard=\"{i}\",tenant=\"{t}\""),
            None => format!("shard=\"{i}\""),
        };
        line(&mut out, "sizel_serve_queries_served_total", &labels, per_shard.queries_served);
        line(
            &mut out,
            "sizel_serve_summaries_computed_total",
            &labels,
            per_shard.summaries_computed,
        );
        line(&mut out, "sizel_serve_mutations_applied_total", &labels, per_shard.mutations_applied);
        line(&mut out, "sizel_serve_rewarmed_total", &labels, per_shard.rewarmed);
        line(&mut out, "sizel_serve_cache_hits_total", &labels, per_shard.cache.hits);
        line(&mut out, "sizel_serve_cache_misses_total", &labels, per_shard.cache.misses);
        line(
            &mut out,
            "sizel_serve_cache_probe_misses_total",
            &labels,
            per_shard.cache.probe_misses,
        );
        line(&mut out, "sizel_serve_cache_evictions_total", &labels, per_shard.cache.evictions);
        line(
            &mut out,
            "sizel_serve_cache_invalidations_total",
            &labels,
            per_shard.cache.invalidations,
        );
        line(
            &mut out,
            "sizel_serve_cache_poison_resets_total",
            &labels,
            per_shard.cache.poison_resets,
        );
        let lookups = per_shard.cache.hits + per_shard.cache.misses;
        let ratio = if lookups == 0 { 0.0 } else { per_shard.cache.hits as f64 / lookups as f64 };
        line(&mut out, "sizel_serve_cache_hit_ratio", &labels, format!("{ratio:.6}"));
        line(&mut out, "sizel_net_queue_depth", &labels, router.shard(i).queue_depth());

        // Refresh lag: shard epoch minus the worker's last completed
        // re-warm epoch (0 when the worker is disabled or caught up).
        let epoch = stats.epochs[i].get();
        line(&mut out, "sizel_cluster_epoch", &labels, epoch);
        let last = stats.refresh.last_epochs.get(i).copied().unwrap_or(epoch);
        line(&mut out, "sizel_refresh_last_epoch", &labels, last);
        line(&mut out, "sizel_refresh_lag", &labels, epoch.saturating_sub(last));

        // Disk tier (absent until the shard attaches one).
        if let Some(disk) = per_shard.disk {
            let c = disk.store.cache;
            line(&mut out, "sizel_disk_cache_total", &format!("{labels},event=\"hit\""), c.hits);
            line(&mut out, "sizel_disk_cache_total", &format!("{labels},event=\"miss\""), c.misses);
            line(
                &mut out,
                "sizel_disk_cache_total",
                &format!("{labels},event=\"eviction\""),
                c.evictions,
            );
            line(
                &mut out,
                "sizel_disk_cache_total",
                &format!("{labels},event=\"recycled\""),
                c.recycled,
            );
            line(&mut out, "sizel_disk_read_errors_total", &labels, c.read_errors);
            line(&mut out, "sizel_disk_resident_pages", &labels, disk.store.resident_pages);
            line(&mut out, "sizel_disk_segment_generation", &labels, disk.store.generation);
            line(&mut out, "sizel_disk_segment_lists", &labels, disk.store.lists);
            line(&mut out, "sizel_disk_checkpoints_total", &labels, disk.store.checkpoints);
            line(&mut out, "sizel_disk_wal_bytes", &labels, disk.wal_bytes);
            line(&mut out, "sizel_disk_wal_appends_total", &labels, disk.wal_appends);
            line(&mut out, "sizel_disk_wal_syncs_total", &labels, disk.wal_syncs);
        }
    }
    line(&mut out, "sizel_refresh_passes_total", "", stats.refresh.passes);
    line(&mut out, "sizel_refresh_rewarmed_keys_total", "", stats.refresh.rewarmed_keys);
    out
}

/// Wraps the metrics page in a minimal HTTP/1.1 response (the scraper
/// path; the server closes the connection after writing it).
pub fn render_http_metrics(counters: &NetCounters, router: &ClusterRouter) -> Vec<u8> {
    let body = render_metrics(counters, router);
    let mut resp = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .into_bytes();
    resp.extend_from_slice(body.as_bytes());
    resp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_helpers_are_relaxed_increments() {
        let c = NetCounters::default();
        NetCounters::bump(&c.frames_in);
        NetCounters::bump(&c.frames_in);
        assert_eq!(NetCounters::get(&c.frames_in), 2);
        assert_eq!(NetCounters::get(&c.frames_out), 0);
    }
}
