//! The canonical payload codec (DESIGN.md §9.2).
//!
//! Every multi-byte scalar is little-endian; floats travel as their IEEE
//! 754 bit patterns (`f64::to_bits`), so encoding is **deterministic and
//! total**: the same in-process value always produces the same bytes.
//! That determinism is load-bearing — the loopback end-to-end suite
//! proves the server correct by encoding in-process
//! [`ClusterRouter`](sizel_cluster::ClusterRouter) answers with this
//! very codec and comparing *raw payload bytes* against what arrived
//! over the socket.
//!
//! Variable-length fields are `u32` counts followed by that many
//! elements; strings are `u32` byte lengths followed by UTF-8. Decoding
//! is defensive: every read is bounds-checked, string lengths are
//! validated against the remaining buffer *before* allocation, and a
//! frame that decodes must also be fully consumed (trailing garbage is a
//! malformed payload, not ignorable padding).

use sizel_core::algo::AlgoKind;
use sizel_core::engine::{
    Mutation, MutationOp, QueryOptions, QueryResult, RefreshPolicy, ResultRanking,
};
use sizel_core::osgen::OsSource;
use sizel_storage::{Epoch, RowId, TableId, TupleRef, Value};

use crate::frame::BusyReason;
use crate::frame::ErrorCode;

/// A payload that failed to decode (maps to
/// [`ErrorCode::MalformedPayload`] on the wire).
#[derive(Debug)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed payload: {}", self.0)
    }
}

impl std::error::Error for WireError {}

type Result<T> = std::result::Result<T, WireError>;

// ---------------------------------------------------------------------
// Primitive writer/reader
// ---------------------------------------------------------------------

pub(crate) fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

pub(crate) fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

pub(crate) fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// A bounds-checked cursor over a received payload.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| WireError(format!("need {n} bytes at offset {}", self.pos)))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub(crate) fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        // Validate against the remaining bytes before allocating: a
        // 4-byte length field must not size a buffer unchecked. UTF-8
        // is checked on the borrowed slice so only the final `String`
        // allocates (no intermediate `Vec` copy).
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|e| WireError(format!("invalid utf-8: {e}")))
    }

    /// Reads a `u32` element count, sanity-capped by what the remaining
    /// bytes could possibly hold (each element is at least
    /// `min_elem_size` bytes).
    pub(crate) fn count(&mut self, min_elem_size: usize) -> Result<usize> {
        let n = self.u32()? as usize;
        let room = (self.buf.len() - self.pos) / min_elem_size.max(1);
        if n > room {
            return Err(WireError(format!(
                "count {n} cannot fit in {} remaining bytes",
                self.buf.len() - self.pos
            )));
        }
        Ok(n)
    }

    /// Decoding must consume the whole payload.
    pub(crate) fn finish(self) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(WireError(format!(
                "{} trailing bytes after a complete value",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Domain scalars
// ---------------------------------------------------------------------

fn put_tuple(buf: &mut Vec<u8>, t: TupleRef) {
    put_u16(buf, t.table.0);
    put_u32(buf, t.row.0);
}

fn get_tuple(r: &mut Reader) -> Result<TupleRef> {
    Ok(TupleRef::new(TableId(r.u16()?), RowId(r.u32()?)))
}

fn algo_to_u8(a: AlgoKind) -> u8 {
    match a {
        AlgoKind::Optimal => 0,
        AlgoKind::OptimalNaive => 1,
        AlgoKind::BottomUp => 2,
        AlgoKind::TopPath => 3,
        AlgoKind::TopPathOpt => 4,
    }
}

fn algo_from_u8(b: u8) -> Result<AlgoKind> {
    Ok(match b {
        0 => AlgoKind::Optimal,
        1 => AlgoKind::OptimalNaive,
        2 => AlgoKind::BottomUp,
        3 => AlgoKind::TopPath,
        4 => AlgoKind::TopPathOpt,
        other => return Err(WireError(format!("unknown algo {other}"))),
    })
}

fn put_opts(buf: &mut Vec<u8>, o: QueryOptions) {
    put_u32(buf, o.l as u32);
    put_u8(buf, algo_to_u8(o.algo));
    put_u8(
        buf,
        match o.source {
            OsSource::DataGraph => 0,
            OsSource::Database => 1,
        },
    );
    put_u8(buf, o.prelim as u8);
    put_u8(
        buf,
        match o.ranking {
            ResultRanking::DsGlobalImportance => 0,
            ResultRanking::SummaryImportance => 1,
        },
    );
}

fn get_opts(r: &mut Reader) -> Result<QueryOptions> {
    let l = r.u32()? as usize;
    let algo = algo_from_u8(r.u8()?)?;
    let source = match r.u8()? {
        0 => OsSource::DataGraph,
        1 => OsSource::Database,
        other => return Err(WireError(format!("unknown os source {other}"))),
    };
    let prelim = match r.u8()? {
        0 => false,
        1 => true,
        other => return Err(WireError(format!("bad bool {other}"))),
    };
    let ranking = match r.u8()? {
        0 => ResultRanking::DsGlobalImportance,
        1 => ResultRanking::SummaryImportance,
        other => return Err(WireError(format!("unknown ranking {other}"))),
    };
    Ok(QueryOptions { l, algo, source, prelim, ranking })
}

fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => put_u8(buf, 0),
        Value::Int(i) => {
            put_u8(buf, 1);
            put_i64(buf, *i);
        }
        Value::Float(f) => {
            put_u8(buf, 2);
            put_f64(buf, *f);
        }
        Value::Text(s) => {
            put_u8(buf, 3);
            put_str(buf, s);
        }
    }
}

fn get_value(r: &mut Reader) -> Result<Value> {
    Ok(match r.u8()? {
        0 => Value::Null,
        1 => Value::Int(r.i64()?),
        2 => Value::Float(r.f64()?),
        3 => Value::Text(r.str()?),
        other => return Err(WireError(format!("unknown value tag {other}"))),
    })
}

fn put_mutation(buf: &mut Vec<u8>, m: &Mutation) {
    put_str(buf, &m.table);
    put_u8(
        buf,
        match m.policy {
            RefreshPolicy::Incremental => 0,
            RefreshPolicy::Exact => 1,
        },
    );
    match &m.op {
        MutationOp::Insert { values } => {
            put_u8(buf, 0);
            put_u32(buf, values.len() as u32);
            for v in values {
                put_value(buf, v);
            }
        }
        MutationOp::Update { pk, values } => {
            put_u8(buf, 1);
            put_i64(buf, *pk);
            put_u32(buf, values.len() as u32);
            for v in values {
                put_value(buf, v);
            }
        }
        MutationOp::Delete { pk } => {
            put_u8(buf, 2);
            put_i64(buf, *pk);
        }
    }
}

fn get_mutation(r: &mut Reader) -> Result<Mutation> {
    let table = r.str()?;
    let policy = match r.u8()? {
        0 => RefreshPolicy::Incremental,
        1 => RefreshPolicy::Exact,
        other => return Err(WireError(format!("unknown refresh policy {other}"))),
    };
    let op = match r.u8()? {
        0 => {
            let n = r.count(1)?;
            let values = (0..n).map(|_| get_value(r)).collect::<Result<Vec<_>>>()?;
            MutationOp::Insert { values }
        }
        1 => {
            let pk = r.i64()?;
            let n = r.count(1)?;
            let values = (0..n).map(|_| get_value(r)).collect::<Result<Vec<_>>>()?;
            MutationOp::Update { pk, values }
        }
        2 => MutationOp::Delete { pk: r.i64()? },
        other => return Err(WireError(format!("unknown mutation op {other}"))),
    };
    Ok(Mutation { table, op, policy })
}

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

/// A decoded request payload (the server's dispatch unit).
#[derive(Clone, Debug)]
pub enum Request {
    /// `Opcode::Ping`.
    Ping,
    /// `Opcode::Query`: a batch of keyword queries.
    Query {
        /// `(keywords, options)` per request, answered in order.
        requests: Vec<(String, QueryOptions)>,
    },
    /// `Opcode::Summarize`: one per-DS summary.
    Summarize {
        /// The data subject tuple.
        tds: TupleRef,
        /// Summary options.
        opts: QueryOptions,
    },
    /// `Opcode::ApplyBatch`: mutations applied cluster-wide as one batch.
    ApplyBatch {
        /// The mutation batch, in application order.
        mutations: Vec<Mutation>,
    },
    /// `Opcode::Stats`.
    Stats,
}

/// Encodes a `Query` request payload, appending to `buf` — the
/// zero-copy form every `encode_*_into` in this module shares: the
/// caller opens a frame (or reuses a scratch buffer) and the payload
/// bytes are written once, in place.
pub fn encode_query_into(buf: &mut Vec<u8>, requests: &[(String, QueryOptions)]) {
    put_u32(buf, requests.len() as u32);
    for (kw, opts) in requests {
        put_str(buf, kw);
        put_opts(buf, *opts);
    }
}

/// Encodes a `Query` request payload.
pub fn encode_query_payload(requests: &[(String, QueryOptions)]) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_query_into(&mut buf, requests);
    buf
}

/// Encodes a `Summarize` request payload, appending to `buf`.
pub fn encode_summarize_into(buf: &mut Vec<u8>, tds: TupleRef, opts: QueryOptions) {
    put_tuple(buf, tds);
    put_opts(buf, opts);
}

/// Encodes a `Summarize` request payload.
pub fn encode_summarize_payload(tds: TupleRef, opts: QueryOptions) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_summarize_into(&mut buf, tds, opts);
    buf
}

/// Encodes an `ApplyBatch` request payload, appending to `buf`.
pub fn encode_apply_into(buf: &mut Vec<u8>, mutations: &[Mutation]) {
    put_u32(buf, mutations.len() as u32);
    for m in mutations {
        put_mutation(buf, m);
    }
}

/// Encodes an `ApplyBatch` request payload.
pub fn encode_apply_payload(mutations: &[Mutation]) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_apply_into(&mut buf, mutations);
    buf
}

/// Decodes a request payload against its opcode's schema.
pub fn decode_request(opcode: crate::frame::Opcode, payload: &[u8]) -> Result<Request> {
    use crate::frame::Opcode;
    let mut r = Reader::new(payload);
    let req = match opcode {
        Opcode::Ping => Request::Ping,
        Opcode::Stats => Request::Stats,
        Opcode::Query => {
            let n = r.count(1)?;
            let requests =
                (0..n).map(|_| Ok((r.str()?, get_opts(&mut r)?))).collect::<Result<Vec<_>>>()?;
            Request::Query { requests }
        }
        Opcode::Summarize => {
            let tds = get_tuple(&mut r)?;
            let opts = get_opts(&mut r)?;
            Request::Summarize { tds, opts }
        }
        Opcode::ApplyBatch => {
            let n = r.count(1)?;
            let mutations = (0..n).map(|_| get_mutation(&mut r)).collect::<Result<Vec<_>>>()?;
            Request::ApplyBatch { mutations }
        }
        reply => return Err(WireError(format!("{reply:?} is a reply, not a request"))),
    };
    r.finish()?;
    Ok(req)
}

// ---------------------------------------------------------------------
// Replies
// ---------------------------------------------------------------------

/// One OS node as decoded from the wire (a faithful mirror of
/// `sizel_core::os::OsNode` without requiring the arena).
#[derive(Clone, Debug, PartialEq)]
pub struct WireOsNode {
    /// The database tuple.
    pub tuple: TupleRef,
    /// The GDS node id (raw).
    pub gds_node: u32,
    /// Parent node index (`None` for the root).
    pub parent: Option<u32>,
    /// Depth (root = 0).
    pub depth: u32,
    /// Local importance.
    pub weight: f64,
}

/// One ranked result as decoded from the wire.
#[derive(Clone, Debug, PartialEq)]
pub struct WireResult {
    /// The data subject tuple.
    pub tds: TupleRef,
    /// Display label of the DS tuple.
    pub ds_label: String,
    /// Global importance of `t_DS`.
    pub global_score: f64,
    /// Size of the OS the summary was computed from.
    pub input_os_size: usize,
    /// Selected node ids, ascending.
    pub selected: Vec<u32>,
    /// `Im(S)` of the selection.
    pub importance: f64,
    /// The materialized size-l OS, nodes in id order.
    pub summary: Vec<WireOsNode>,
}

/// A decoded reply payload (the client's receive unit).
#[derive(Clone, Debug)]
pub enum Reply {
    /// `Opcode::Pong`.
    Pong,
    /// `Opcode::Results`: the serving epoch plus per-request result lists.
    Results {
        /// The consistent cluster epoch the batch was served at.
        epoch: u64,
        /// One ranked result list per submitted request, in order.
        results: Vec<Vec<WireResult>>,
    },
    /// `Opcode::Summary`: the serving epoch plus one summary.
    Summary {
        /// The cluster epoch the summary was served at.
        epoch: u64,
        /// The summary.
        result: WireResult,
    },
    /// `Opcode::Applied`: the cluster's new epoch.
    Applied {
        /// The common post-apply epoch.
        epoch: u64,
    },
    /// `Opcode::StatsText`: the metrics page.
    StatsText {
        /// Text-exposition metrics, one `name{labels} value` per line.
        text: String,
    },
    /// `Opcode::Busy`: the request was shed before execution.
    Busy {
        /// Which admission gate rejected it.
        reason: BusyReason,
    },
    /// `Opcode::Error`: the request failed.
    Error {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

fn put_result(buf: &mut Vec<u8>, qr: &QueryResult) {
    put_tuple(buf, qr.tds);
    put_str(buf, &qr.ds_label);
    put_f64(buf, qr.global_score);
    put_u32(buf, qr.input_os_size as u32);
    put_u32(buf, qr.result.selected.len() as u32);
    for id in &qr.result.selected {
        put_u32(buf, id.0);
    }
    put_f64(buf, qr.result.importance);
    put_u32(buf, qr.summary.len() as u32);
    for (_, node) in qr.summary.iter() {
        put_tuple(buf, node.tuple);
        put_u32(buf, node.gds_node.0);
        match node.parent {
            None => put_u8(buf, 0),
            Some(p) => {
                put_u8(buf, 1);
                put_u32(buf, p.0);
            }
        }
        put_u32(buf, node.depth);
        put_f64(buf, node.weight);
    }
}

fn get_result(r: &mut Reader) -> Result<WireResult> {
    let tds = get_tuple(r)?;
    let ds_label = r.str()?;
    let global_score = r.f64()?;
    let input_os_size = r.u32()? as usize;
    let n_sel = r.count(4)?;
    let selected = (0..n_sel).map(|_| r.u32()).collect::<Result<Vec<_>>>()?;
    let importance = r.f64()?;
    let n_nodes = r.count(6)?;
    let mut summary = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        let tuple = get_tuple(r)?;
        let gds_node = r.u32()?;
        let parent = match r.u8()? {
            0 => None,
            1 => Some(r.u32()?),
            other => return Err(WireError(format!("bad option tag {other}"))),
        };
        let depth = r.u32()?;
        let weight = r.f64()?;
        summary.push(WireOsNode { tuple, gds_node, parent, depth, weight });
    }
    Ok(WireResult { tds, ds_label, global_score, input_os_size, selected, importance, summary })
}

/// Encodes a `Results` reply payload, appending to `buf` — on the
/// server's cache-hit path this serializes straight from the cached
/// `Arc<QueryResult>`s into a pooled frame, no intermediate buffer.
pub fn encode_results_into(
    buf: &mut Vec<u8>,
    epoch: Epoch,
    results: &[Vec<std::sync::Arc<QueryResult>>],
) {
    put_u64(buf, epoch.get());
    put_u32(buf, results.len() as u32);
    for per_request in results {
        put_u32(buf, per_request.len() as u32);
        for qr in per_request {
            put_result(buf, qr);
        }
    }
}

/// Encodes a `Results` reply payload from in-process router output —
/// the function the loopback suite also runs on its side of the
/// byte-identity check.
pub fn encode_results_payload(
    epoch: Epoch,
    results: &[Vec<std::sync::Arc<QueryResult>>],
) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_results_into(&mut buf, epoch, results);
    buf
}

/// Encodes a `Summary` reply payload, appending to `buf`.
pub fn encode_summary_into(buf: &mut Vec<u8>, epoch: Epoch, result: &QueryResult) {
    put_u64(buf, epoch.get());
    put_result(buf, result);
}

/// Encodes a `Summary` reply payload.
pub fn encode_summary_payload(epoch: Epoch, result: &QueryResult) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_summary_into(&mut buf, epoch, result);
    buf
}

/// Encodes an `Applied` reply payload, appending to `buf`.
pub fn encode_applied_into(buf: &mut Vec<u8>, epoch: Epoch) {
    put_u64(buf, epoch.get());
}

/// Encodes an `Applied` reply payload.
pub fn encode_applied_payload(epoch: Epoch) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_applied_into(&mut buf, epoch);
    buf
}

/// Encodes a `StatsText` reply payload, appending to `buf`.
pub fn encode_stats_into(buf: &mut Vec<u8>, text: &str) {
    put_str(buf, text);
}

/// Encodes a `StatsText` reply payload.
pub fn encode_stats_payload(text: &str) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_stats_into(&mut buf, text);
    buf
}

/// Encodes a `Busy` reply payload, appending to `buf`.
pub fn encode_busy_into(buf: &mut Vec<u8>, reason: BusyReason) {
    put_u8(buf, reason as u8);
}

/// Encodes a `Busy` reply payload.
pub fn encode_busy_payload(reason: BusyReason) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_busy_into(&mut buf, reason);
    buf
}

/// Encodes an `Error` reply payload, appending to `buf`.
pub fn encode_error_into(buf: &mut Vec<u8>, code: ErrorCode, message: &str) {
    put_u8(buf, code as u8);
    put_str(buf, message);
}

/// Encodes an `Error` reply payload.
pub fn encode_error_payload(code: ErrorCode, message: &str) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_error_into(&mut buf, code, message);
    buf
}

/// Decodes a reply payload against its opcode's schema.
pub fn decode_reply(opcode: crate::frame::Opcode, payload: &[u8]) -> Result<Reply> {
    use crate::frame::Opcode;
    let mut r = Reader::new(payload);
    let reply = match opcode {
        Opcode::Pong => Reply::Pong,
        Opcode::Results => {
            let epoch = r.u64()?;
            let n = r.count(4)?;
            let mut results = Vec::with_capacity(n);
            for _ in 0..n {
                let m = r.count(1)?;
                results.push((0..m).map(|_| get_result(&mut r)).collect::<Result<Vec<_>>>()?);
            }
            Reply::Results { epoch, results }
        }
        Opcode::Summary => {
            let epoch = r.u64()?;
            let result = get_result(&mut r)?;
            Reply::Summary { epoch, result }
        }
        Opcode::Applied => Reply::Applied { epoch: r.u64()? },
        Opcode::StatsText => Reply::StatsText { text: r.str()? },
        Opcode::Busy => {
            let b = r.u8()?;
            let reason = BusyReason::from_u8(b)
                .ok_or_else(|| WireError(format!("unknown busy reason {b}")))?;
            Reply::Busy { reason }
        }
        Opcode::Error => {
            let b = r.u8()?;
            let code = ErrorCode::from_u8(b)
                .ok_or_else(|| WireError(format!("unknown error code {b}")))?;
            Reply::Error { code, message: r.str()? }
        }
        request => return Err(WireError(format!("{request:?} is a request, not a reply"))),
    };
    r.finish()?;
    Ok(reply)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Opcode;

    #[test]
    fn query_request_roundtrips() {
        let requests = vec![
            ("smith".to_owned(), QueryOptions::default()),
            (
                "jones keyword".to_owned(),
                QueryOptions {
                    l: 7,
                    algo: AlgoKind::BottomUp,
                    source: OsSource::Database,
                    prelim: false,
                    ranking: ResultRanking::SummaryImportance,
                },
            ),
        ];
        let payload = encode_query_payload(&requests);
        match decode_request(Opcode::Query, &payload).expect("decodes") {
            Request::Query { requests: decoded } => assert_eq!(decoded, requests),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn apply_request_roundtrips_every_mutation_kind() {
        let muts = vec![
            Mutation::insert("Author", vec![Value::Int(7), "Ada".into(), Value::Null]),
            Mutation::update("Paper", 3, vec![Value::Int(3), Value::Float(0.5)]),
            Mutation::delete("AuthorPaper", 9),
        ];
        let payload = encode_apply_payload(&muts);
        match decode_request(Opcode::ApplyBatch, &payload).expect("decodes") {
            Request::ApplyBatch { mutations } => {
                assert_eq!(mutations.len(), 3);
                assert_eq!(mutations[0].table, "Author");
                assert!(matches!(&mutations[1].op, MutationOp::Update { pk: 3, .. }));
                assert!(matches!(&mutations[2].op, MutationOp::Delete { pk: 9 }));
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn error_and_busy_replies_roundtrip() {
        let e = encode_error_payload(ErrorCode::BadRequest, "unknown tenant `acme`");
        match decode_reply(Opcode::Error, &e).expect("decodes") {
            Reply::Error { code, message } => {
                assert_eq!(code, ErrorCode::BadRequest);
                assert!(message.contains("acme"));
            }
            other => panic!("wrong variant: {other:?}"),
        }
        for reason in [BusyReason::InflightBudget, BusyReason::QueueFull, BusyReason::OutboxFull] {
            let b = encode_busy_payload(reason);
            match decode_reply(Opcode::Busy, &b).expect("decodes") {
                Reply::Busy { reason: got } => assert_eq!(got, reason),
                other => panic!("wrong variant: {other:?}"),
            }
        }
    }

    #[test]
    fn into_variants_append_without_clearing() {
        // The `_into` family must append after whatever the caller
        // already wrote (a frame header, typically) — byte-identical to
        // the allocating `_payload` form from that point on.
        let requests = vec![("smith".to_owned(), QueryOptions::default())];
        let mut buf = b"header".to_vec();
        encode_query_into(&mut buf, &requests);
        assert_eq!(&buf[..6], b"header");
        assert_eq!(&buf[6..], &encode_query_payload(&requests)[..]);

        let mut buf = b"h".to_vec();
        encode_error_into(&mut buf, ErrorCode::Internal, "boom");
        assert_eq!(&buf[1..], &encode_error_payload(ErrorCode::Internal, "boom")[..]);

        let mut buf = Vec::new();
        encode_busy_into(&mut buf, BusyReason::QueueFull);
        assert_eq!(buf, encode_busy_payload(BusyReason::QueueFull));
    }

    #[test]
    fn trailing_garbage_is_malformed() {
        let mut payload = encode_applied_payload(Epoch(4));
        payload.push(0xAB);
        assert!(decode_reply(Opcode::Applied, &payload).is_err());
    }

    #[test]
    fn truncated_and_lying_lengths_are_malformed_not_panics() {
        let requests = vec![("smith".to_owned(), QueryOptions::default())];
        let good = encode_query_payload(&requests);
        // Every strict prefix must fail cleanly.
        for cut in 0..good.len() {
            assert!(decode_request(Opcode::Query, &good[..cut]).is_err(), "prefix {cut}");
        }
        // A string length pointing past the buffer must not allocate or
        // panic. Offset 4 is the first string's length field.
        let mut lying = good.clone();
        lying[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_request(Opcode::Query, &lying).is_err());
        // An element count far beyond the remaining bytes is rejected
        // before any per-element work.
        let mut big_count = good;
        big_count[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_request(Opcode::Query, &big_count).is_err());
    }
}
