//! The paper's worked examples, step by step.
//!
//! Replays Figures 4, 5 and 6 on the exact trees printed in the paper:
//! the DP table construction, the Bottom-Up pruning order, and the
//! Top-Path selections — then shows the §7 extensions (consecutive-l
//! similarity and word-budget summaries) on the same trees.
//!
//! ```text
//! cargo run --release --example paper_walkthrough
//! ```

use sizel::{
    consecutive_optima_similarity, BottomUp, DpKnapsack, DpNaive, SizeLAlgorithm, TopPath,
    WordBudgetDp,
};
use sizel_core::os::{figure4_tree, figure56_tree};

fn show(name: &str, r: &sizel::SizeLResult) {
    let nodes: Vec<String> = r.selected.iter().map(|id| (id.0 + 1).to_string()).collect();
    println!("  {name:<28} {{{}}}  Im(S) = {}", nodes.join(","), r.importance);
}

fn main() {
    println!("=== Figure 4: the DP example ===");
    let fig4 = figure4_tree();
    println!("Tree: 14 nodes, weights as printed in the paper.");
    let dp = DpKnapsack.compute(&fig4, 4);
    show("optimal size-4 (DP)", &dp);
    println!("  (the paper computes S_1,4 = {{1,4,5,6}} with weight 176)");
    let naive = DpNaive::default().compute(&fig4, 4);
    assert_eq!(naive.importance, dp.importance);
    println!("  Algorithm 1 as written agrees: {}", naive.importance);

    println!("\n=== Figure 5: Bottom-Up Pruning (w12 = 55) ===");
    let fig5 = figure56_tree(55.0);
    show("Bottom-Up size-10", &BottomUp.compute(&fig5, 10));
    show("Bottom-Up size-5", &BottomUp.compute(&fig5, 5));
    show("optimal size-5", &DpKnapsack.compute(&fig5, 5));
    println!(
        "  (the paper: Bottom-Up keeps {{1,5,6,11,13}} = 235; optimal is {{1,5,6,12,14}} = 240)"
    );

    println!("\n=== Figure 6: Update Top-Path-l (w12 = 12) ===");
    let fig6 = figure56_tree(12.0);
    show("Top-Path size-5", &TopPath.compute(&fig6, 5));
    show("Top-Path size-3", &TopPath.compute(&fig6, 3));
    show("optimal size-3", &DpKnapsack.compute(&fig6, 3));
    println!("  (the paper: the size-3 OS is {{1,5,11}} instead of the optimal {{1,5,6}})");

    println!("\n=== §7: consecutive optima can differ sharply ===");
    for (l, jaccard, nested) in consecutive_optima_similarity(&fig6, 8) {
        println!("  l={l}: Jaccard(S*_l, S*_(l-1)) = {jaccard:.3}  nested = {nested}");
    }

    println!("\n=== §7: word-budget variant on the Figure 6 tree ===");
    // Cost model: node id + 1 words (arbitrary but illustrative).
    let cost = |id: sizel::OsNodeId| (id.0 as usize % 3) + 1;
    for budget in [4usize, 8, 14] {
        let r = WordBudgetDp.compute(&fig6, budget, &cost);
        let used: usize = r.selected.iter().map(|&id| cost(id)).sum();
        let nodes: Vec<String> = r.selected.iter().map(|id| (id.0 + 1).to_string()).collect();
        println!(
            "  budget {budget:>2}: {{{}}} uses {used} words, Im(S) = {}",
            nodes.join(","),
            r.importance
        );
    }
}
