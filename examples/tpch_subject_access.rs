//! A Data-Protection-Act subject access request over a trading database.
//!
//! The paper's motivating application (Section 1): "data controllers of
//! organizations must extract data for a given DS from their databases and
//! present it in an intelligible form". We pick a customer, produce the
//! full report (the complete OS), and the size-20 executive summary — and
//! show how ValueRank (GA1) orders customers differently from plain
//! ObjectRank (GA2).
//!
//! ```text
//! cargo run --release --example tpch_subject_access
//! ```

use sizel::{
    build_tpch_engine, generate_os, GaPreset, OsSource, QueryOptions, RenderOptions, TpchConfig,
    TupleRef, D1,
};

fn main() {
    let value_rank = build_tpch_engine(&TpchConfig::tiny(), GaPreset::Ga1, D1);
    let object_rank = build_tpch_engine(&TpchConfig::tiny(), GaPreset::Ga2, D1);

    let customer = value_rank.db().table_id("Customer").expect("schema");
    println!("Customer GDS(0.7), annotated (cf. Figure 12):");
    print!("{}", value_rank.gds(customer).pretty());
    println!();

    // The DS: the customer with the highest ValueRank importance.
    let table = value_rank.db().table(customer);
    let best = table
        .iter()
        .map(|(rid, _)| TupleRef::new(customer, rid))
        .max_by(|a, b| {
            let sa = value_rank.scores().global(value_rank.data_graph().node_id(*a));
            let sb = value_rank.scores().global(value_rank.data_graph().node_id(*b));
            sa.total_cmp(&sb)
        })
        .expect("customers exist");
    let name = table.value(best.row, 1).as_str().expect("name").to_owned();
    println!("Subject access request for: {name}\n");

    // Full report = the complete OS.
    let ctx = value_rank.context(customer);
    let complete = generate_os(&ctx, best, None, OsSource::DataGraph);
    println!(
        "Full report holds {} tuples (orders, lineitems, part supplies, nation...).",
        complete.len()
    );
    let head = RenderOptions { max_lines: Some(15), ..RenderOptions::default() };
    print!("{}", sizel::render_os(value_rank.db(), value_rank.gds(customer), &complete, &head));

    // Executive summary = the size-20 OS.
    println!("\nExecutive summary (size-20 OS):");
    let results = value_rank.query_with(&name, QueryOptions { l: 20, ..QueryOptions::default() });
    print!("{}", value_rank.render(&results[0], &RenderOptions::default()));

    // ValueRank vs ObjectRank: who are the top-3 customers?
    println!("\nTop-3 customers by global importance:");
    let rank_top3 = |engine: &sizel::SizeLEngine, label: &str| {
        let table = engine.db().table(customer);
        let mut scored: Vec<(f64, String)> = table
            .iter()
            .map(|(rid, row)| {
                let score = engine
                    .scores()
                    .global(engine.data_graph().node_id(TupleRef::new(customer, rid)));
                (score, row[1].as_str().expect("name").to_owned())
            })
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));
        println!("  {label}:");
        for (score, who) in scored.iter().take(3) {
            println!("    {score:>8.3}  {who}");
        }
    };
    rank_top3(&value_rank, "ValueRank (GA1: order/lineitem values drive authority)");
    rank_top3(&object_rank, "ObjectRank (GA2: link structure only)");
}
