//! DBLP exploration: compare the size-l algorithms on one author.
//!
//! Shows the annotated Author GDS (the Figure 2 view over synthetic data),
//! then for a prolific author compares all four algorithms across l,
//! reporting importance, approximation quality, runtime, and the effect of
//! prelim-l generation (Avoidance Conditions 1 and 2).
//!
//! ```text
//! cargo run --release --example dblp_explore
//! ```

use std::time::Instant;

use sizel::{
    approximation_ratio, build_dblp_engine, generate_os, generate_prelim, AlgoKind, DblpConfig,
    GaPreset, OsSource, D1,
};

fn main() {
    let engine = build_dblp_engine(&DblpConfig::small(), GaPreset::Ga1, D1);

    // The Figure 2 view: the Author GDS annotated with affinity and the
    // max(Ri)/mmax(Ri) statistics that drive Algorithm 4.
    let author = engine.db().table_id("Author").expect("schema");
    println!("Author GDS(0.7), annotated (cf. Figure 2):");
    print!("{}", engine.gds(author).pretty());
    println!();

    // Pick the DS with the largest complete OS: Christos in the preset.
    let results = engine.query("Christos Faloutsos", 10);
    let tds = results[0].tds;
    let ctx = engine.context(author);
    let complete = generate_os(&ctx, tds, None, OsSource::DataGraph);
    println!("DS = {}, |OS| = {} tuples\n", results[0].ds_label, complete.len());

    println!("{:<6} {:<22} {:>12} {:>8} {:>10}", "l", "algorithm", "Im(S)", "quality", "time");
    for l in [5usize, 10, 15, 20, 25, 30] {
        let cut = generate_os(&ctx, tds, Some(l as u32 - 1), OsSource::DataGraph);
        let optimal = AlgoKind::Optimal.algorithm().compute(&cut, l);
        for kind in [AlgoKind::Optimal, AlgoKind::BottomUp, AlgoKind::TopPath, AlgoKind::TopPathOpt]
        {
            let algo = kind.algorithm();
            let t0 = Instant::now();
            let r = algo.compute(&cut, l);
            let dt = t0.elapsed();
            println!(
                "{:<6} {:<22} {:>12.3} {:>7.1}% {:>9.1?}",
                l,
                kind.name(),
                r.importance,
                100.0 * approximation_ratio(&r, &optimal),
                dt
            );
        }
        println!();
    }

    // Prelim-l generation: how much of the OS the avoidance conditions skip.
    println!("Prelim-l OS generation (Algorithm 4) vs the complete OS:");
    println!(
        "{:<6} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "l", "|prelim|", "|complete|", "cond1 skips", "cond2 probes", "full joins"
    );
    for l in [5usize, 10, 20, 50] {
        let (prelim, stats) = generate_prelim(&ctx, tds, l, OsSource::DataGraph);
        let cut = generate_os(&ctx, tds, Some(l as u32 - 1), OsSource::DataGraph);
        println!(
            "{:<6} {:>10} {:>12} {:>12} {:>12} {:>12}",
            l,
            prelim.len(),
            cut.len(),
            stats.cond1_skips,
            stats.cond2_probes,
            stats.full_joins
        );
    }
}
