//! Quickstart: the paper's running example end to end.
//!
//! Builds a synthetic DBLP database seeded with the three "Faloutsos"
//! example authors, then reproduces:
//!
//! * Example 3 — the plain R-KwS result of Q1 (three Author tuples),
//! * Example 4 — the complete OS of the most important match,
//! * Example 5 — the three size-15 OSs.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sizel::{
    build_dblp_engine, generate_os, DblpConfig, GaPreset, OsSource, QueryOptions, RenderOptions, D1,
};

fn main() {
    println!("Building a synthetic DBLP database and the size-l OS engine...");
    let engine = build_dblp_engine(&DblpConfig::small(), GaPreset::Ga1, D1);
    println!("  {} tuples, vocabulary built, ObjectRank converged.\n", engine.db().total_tuples());

    // --- Example 3: the plain R-KwS answer --------------------------------
    println!("Q1 = \"Faloutsos\" as a plain R-KwS result (Example 3):");
    let results = engine.query("Faloutsos", 15);
    for r in &results {
        println!("  {}", r.ds_label);
    }
    println!();

    // --- Example 4: the complete OS of the top match ----------------------
    let top = &results[0];
    let ctx = engine.context(top.tds.table);
    let complete = generate_os(&ctx, top.tds, None, OsSource::DataGraph);
    println!(
        "Example 4 — the complete OS for {} has {} tuples; first lines:",
        top.ds_label,
        complete.len()
    );
    let preview = RenderOptions { max_lines: Some(12), ..RenderOptions::default() };
    print!("{}", sizel::render_os(engine.db(), engine.gds(top.tds.table), &complete, &preview));
    println!();

    // --- Example 5: the size-15 OSs ---------------------------------------
    println!("Example 5 — size-15 OSs for Q1:");
    for r in &results {
        println!("----------------------------------------------------------");
        print!("{}", engine.render(r, &RenderOptions::default()));
        println!(
            "  [input OS: {} tuples -> size-{} OS, Im(S) = {:.3}]",
            r.input_os_size,
            r.result.len(),
            r.result.importance
        );
    }

    // --- And the same query at a different l ------------------------------
    println!("\nThe same query with l = 5 (snippet-sized):");
    let small =
        engine.query_with("Christos Faloutsos", QueryOptions { l: 5, ..QueryOptions::default() });
    print!("{}", engine.render(&small[0], &RenderOptions::default()));
}
