//! Property-based tests of the paper's formal claims (Lemmas 1-3 and the
//! structural invariants of Definitions 1-2), over randomly generated OS
//! trees.

use proptest::prelude::*;

use sizel::{
    BottomUp, BruteForce, DpKnapsack, DpNaive, Os, OsNodeId, SizeLAlgorithm, TopPath, TopPathOpt,
    WordBudgetDp,
};

/// Builds a random tree from raw seeds: node i's parent is `seeds[i-1] % i`.
fn tree_from(seeds: &[u32], weights: &[f64]) -> Os {
    let n = weights.len();
    let mut parents = vec![None];
    for i in 1..n {
        parents.push(Some((seeds[i - 1] as usize) % i));
    }
    Os::synthetic(&parents, weights)
}

/// Strategy: a tree of 1..=max_n nodes with weights in [0, 100).
fn arb_tree(max_n: usize) -> impl Strategy<Value = Os> {
    (1..=max_n).prop_flat_map(|n| {
        (
            proptest::collection::vec(any::<u32>(), n.saturating_sub(1)),
            proptest::collection::vec(0.0..100.0f64, n),
        )
            .prop_map(|(seeds, weights)| tree_from(&seeds, &weights))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lemma 1: the DP computes the optimum (certified by brute force).
    #[test]
    fn lemma1_dp_is_optimal(os in arb_tree(11), l in 1usize..12) {
        let brute = BruteForce.compute(&os, l);
        let dp = DpKnapsack.compute(&os, l);
        prop_assert!((brute.importance - dp.importance).abs() < 1e-9);
    }

    /// The faithful Algorithm-1 enumeration computes the same tables as the
    /// knapsack merge.
    #[test]
    fn naive_dp_matches_knapsack(os in arb_tree(10), l in 1usize..11) {
        let naive = DpNaive::default().compute(&os, l);
        let fast = DpKnapsack.compute(&os, l);
        prop_assert!((naive.importance - fast.importance).abs() < 1e-9);
    }

    /// Definition 1 invariants for every algorithm: exactly min(l, n)
    /// nodes, connected, containing the root; and no greedy result beats
    /// the optimum.
    #[test]
    fn definition1_invariants(os in arb_tree(50), l in 0usize..60) {
        let opt = DpKnapsack.compute(&os, l);
        let algorithms: [&dyn SizeLAlgorithm; 4] =
            [&DpKnapsack, &BottomUp, &TopPath, &TopPathOpt];
        for algo in algorithms {
            let r = algo.compute(&os, l);
            prop_assert_eq!(r.len(), l.min(os.len()), "{}", algo.name());
            prop_assert!(os.is_valid_selection(&r.selected), "{}", algo.name());
            prop_assert!(r.importance <= opt.importance + 1e-9, "{}", algo.name());
            // Reported importance matches the selection.
            prop_assert!((r.importance - os.weight_of(&r.selected)).abs() < 1e-9);
        }
    }

    /// Lemma 2: under depth-monotone weights Bottom-Up is optimal.
    #[test]
    fn lemma2_bottom_up_optimal_when_monotone(os in arb_tree(40), l in 1usize..41) {
        // Rewrite weights to be monotone non-increasing along every path.
        let n = os.len();
        let mut weights: Vec<f64> = (0..n).map(|i| os.node(OsNodeId(i as u32)).weight).collect();
        let parents: Vec<Option<usize>> = (0..n)
            .map(|i| os.node(OsNodeId(i as u32)).parent.map(|p| p.index()))
            .collect();
        for i in 1..n {
            let p = parents[i].expect("non-root");
            if weights[i] > weights[p] {
                weights[i] = weights[p];
            }
        }
        let monotone = Os::synthetic(&parents, &weights);
        let bu = BottomUp.compute(&monotone, l);
        let opt = DpKnapsack.compute(&monotone, l);
        prop_assert!((bu.importance - opt.importance).abs() < 1e-9,
            "Lemma 2: bu={} opt={}", bu.importance, opt.importance);
    }

    /// Projection (materializing a size-l OS) preserves node count, total
    /// weight and tree well-formedness.
    #[test]
    fn projection_roundtrip(os in arb_tree(40), l in 1usize..41) {
        let r = TopPath.compute(&os, l);
        let sub = os.project(&r.selected);
        prop_assert_eq!(sub.len(), r.len());
        prop_assert!((sub.total_weight() - r.importance).abs() < 1e-9);
        prop_assert!(sub.validate().is_ok());
    }

    /// The word-budget DP with unit costs degenerates to the size-l DP.
    #[test]
    fn word_budget_unit_cost_equals_size_l(os in arb_tree(25), l in 1usize..26) {
        let budget = WordBudgetDp.compute(&os, l, &|_| 1usize);
        let sized = DpKnapsack.compute(&os, l);
        prop_assert!((budget.importance - sized.importance).abs() < 1e-9);
    }

    /// The word-budget DP never exceeds its budget and returns connected
    /// selections.
    #[test]
    fn word_budget_respects_budget(
        os in arb_tree(25),
        budget in 1usize..60,
        cost_seed in any::<u64>(),
    ) {
        let n = os.len();
        let costs: Vec<usize> = (0..n)
            .map(|i| 1 + ((cost_seed.rotate_left(i as u32) as usize) % 5))
            .collect();
        let r = WordBudgetDp.compute(&os, budget, &|id: OsNodeId| costs[id.index()]);
        let used: usize = r.selected.iter().map(|&id| costs[id.index()]).sum();
        prop_assert!(used <= budget);
        if !r.selected.is_empty() {
            prop_assert!(os.is_valid_selection(&r.selected));
        }
    }

    /// Monotone growth: the optimal importance is non-decreasing in l
    /// (adding budget never hurts).
    #[test]
    fn optimal_importance_monotone_in_l(os in arb_tree(30)) {
        let mut last = 0.0f64;
        for l in 1..=os.len() {
            let r = DpKnapsack.compute(&os, l);
            prop_assert!(r.importance + 1e-9 >= last, "l={l}");
            last = r.importance;
        }
    }

    /// Tie-free determinism: running any algorithm twice yields the same
    /// selection.
    #[test]
    fn algorithms_are_deterministic(os in arb_tree(30), l in 1usize..31) {
        let algorithms: [&dyn SizeLAlgorithm; 4] =
            [&DpKnapsack, &BottomUp, &TopPath, &TopPathOpt];
        for algo in algorithms {
            let a = algo.compute(&os, l);
            let b = algo.compute(&os, l);
            prop_assert_eq!(a.selected, b.selected, "{}", algo.name());
        }
    }
}
