//! End-to-end integration tests: keyword query in, rendered size-l OS out,
//! across both databases, both tuple sources, and all algorithms.

use sizel::{
    build_dblp_engine, build_tpch_engine, generate_os, AlgoKind, DblpConfig, GaPreset, OsSource,
    QueryOptions, RenderOptions, ResultRanking, TpchConfig, D1, D2,
};
use std::sync::OnceLock;

fn dblp() -> &'static sizel::SizeLEngine {
    static E: OnceLock<sizel::SizeLEngine> = OnceLock::new();
    E.get_or_init(|| build_dblp_engine(&DblpConfig::small(), GaPreset::Ga1, D1))
}

fn tpch() -> &'static sizel::SizeLEngine {
    static E: OnceLock<sizel::SizeLEngine> = OnceLock::new();
    E.get_or_init(|| build_tpch_engine(&TpchConfig::tiny(), GaPreset::Ga1, D1))
}

#[test]
fn example_5_scenario_q1_l15() {
    // Q1 = "Faloutsos", l = 15: one size-15 OS per brother, each a valid
    // connected tree rooted at the Author tuple, rendered like Example 5.
    let results = dblp().query("Faloutsos", 15);
    assert_eq!(results.len(), 3);
    for r in &results {
        assert_eq!(r.summary.len(), 15);
        r.summary.validate().expect("summary is a well-formed tree");
        assert_eq!(r.summary.node(r.summary.root()).tuple, r.tds);
        let text = dblp().render(r, &RenderOptions::default());
        assert!(text.starts_with("Author: "));
        assert!(text.contains("Faloutsos"));
        assert!(text.contains("(Total 15 tuples)"));
    }
}

#[test]
fn all_algorithms_agree_on_validity_and_dominance() {
    for algo in [AlgoKind::Optimal, AlgoKind::BottomUp, AlgoKind::TopPath, AlgoKind::TopPathOpt] {
        for l in [1usize, 5, 15, 40] {
            let results = dblp().query_with(
                "Christos Faloutsos",
                QueryOptions { l, algo, prelim: false, ..QueryOptions::default() },
            );
            assert_eq!(results.len(), 1, "{algo:?} l={l}");
            let r = &results[0];
            assert_eq!(r.result.len(), l.min(r.input_os_size));
            r.summary.validate().unwrap();
        }
    }
    // Optimal dominates every other algorithm at equal l.
    let opt = dblp()
        .query_with(
            "Christos Faloutsos",
            QueryOptions {
                l: 20,
                algo: AlgoKind::Optimal,
                prelim: false,
                ..QueryOptions::default()
            },
        )
        .remove(0);
    for algo in [AlgoKind::BottomUp, AlgoKind::TopPath, AlgoKind::TopPathOpt] {
        let r = dblp()
            .query_with(
                "Christos Faloutsos",
                QueryOptions { l: 20, algo, prelim: false, ..QueryOptions::default() },
            )
            .remove(0);
        assert!(r.result.importance <= opt.result.importance + 1e-9, "{algo:?} beat the optimum");
    }
}

#[test]
fn data_graph_and_database_sources_agree() {
    for keywords in ["Michalis Faloutsos", "Petros Faloutsos"] {
        let a = dblp().query_with(
            keywords,
            QueryOptions {
                l: 12,
                source: OsSource::DataGraph,
                prelim: false,
                ..QueryOptions::default()
            },
        );
        let b = dblp().query_with(
            keywords,
            QueryOptions {
                l: 12,
                source: OsSource::Database,
                prelim: false,
                ..QueryOptions::default()
            },
        );
        assert_eq!(a[0].input_os_size, b[0].input_os_size);
        assert!((a[0].result.importance - b[0].result.importance).abs() < 1e-9);
    }
}

#[test]
fn prelim_and_complete_equal_quality_on_small_engine() {
    for l in [5usize, 10, 25] {
        let p = dblp().query_with(
            "Christos Faloutsos",
            QueryOptions { l, prelim: true, ..QueryOptions::default() },
        );
        let c = dblp().query_with(
            "Christos Faloutsos",
            QueryOptions { l, prelim: false, ..QueryOptions::default() },
        );
        assert!(p[0].input_os_size <= c[0].input_os_size);
        let ratio = p[0].result.importance / c[0].result.importance.max(1e-12);
        assert!(ratio > 0.9, "l={l}: prelim ratio {ratio}");
    }
}

#[test]
fn ranking_modes_differ_only_in_order() {
    let by_ds = dblp().query_with("Faloutsos", QueryOptions { l: 10, ..QueryOptions::default() });
    let by_sum = dblp().query_with(
        "Faloutsos",
        QueryOptions {
            l: 10,
            ranking: ResultRanking::SummaryImportance,
            ..QueryOptions::default()
        },
    );
    assert_eq!(by_ds.len(), by_sum.len());
    let mut a: Vec<_> = by_ds.iter().map(|r| r.tds).collect();
    let mut b: Vec<_> = by_sum.iter().map(|r| r.tds).collect();
    a.sort();
    b.sort();
    assert_eq!(a, b, "same result set, potentially different order");
    for w in by_sum.windows(2) {
        assert!(w[0].result.importance >= w[1].result.importance);
    }
}

#[test]
fn tpch_customer_subject_access() {
    let e = tpch();
    let customers = e.db().table(e.db().table_id("Customer").unwrap());
    // Query the first customer by full name: exactly one DS.
    let name = customers.value(sizel_storage_row(0), 1).as_str().unwrap().to_owned();
    let results = e.query(&name, 20);
    assert_eq!(results.len(), 1);
    let r = &results[0];
    assert!(r.summary.len() <= 20);
    let text = e.render(r, &RenderOptions::default());
    assert!(text.starts_with("Customer: "));
    // The hidden Partsupp.comment column never renders.
    assert!(!text.contains("lot "), "hidden columns must not render: {text}");
}

#[test]
fn value_rank_and_object_rank_produce_different_orders() {
    let ga1 = build_tpch_engine(&TpchConfig::tiny(), GaPreset::Ga1, D1);
    let ga2 = build_tpch_engine(&TpchConfig::tiny(), GaPreset::Ga2, D1);
    let customer = ga1.db().table_id("Customer").unwrap();
    let rank_of = |e: &sizel::SizeLEngine| -> Vec<usize> {
        let t = e.db().table(customer);
        let mut scored: Vec<(f64, usize)> = t
            .iter()
            .map(|(rid, _)| {
                (
                    e.scores().global(e.data_graph().node_id(sizel::TupleRef::new(customer, rid))),
                    rid.index(),
                )
            })
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));
        scored.into_iter().take(10).map(|(_, i)| i).collect()
    };
    assert_ne!(rank_of(&ga1), rank_of(&ga2), "value functions must change the top-10");
}

#[test]
fn damping_changes_summaries() {
    let d1 = build_dblp_engine(&DblpConfig::small(), GaPreset::Ga1, D1);
    let d2 = build_dblp_engine(&DblpConfig::small(), GaPreset::Ga2, D2);
    let a = d1.query("Christos Faloutsos", 10).remove(0);
    let b = d2.query("Christos Faloutsos", 10).remove(0);
    // Same DS, same size; different importance models.
    assert_eq!(a.tds, b.tds);
    assert_eq!(a.result.len(), b.result.len());
}

#[test]
fn empty_and_nonsense_queries() {
    assert!(dblp().query("", 10).is_empty());
    assert!(dblp().query("zzz yyy xxx", 10).is_empty());
    assert!(dblp().query("???", 10).is_empty());
}

#[test]
fn l_one_returns_just_the_root() {
    let results = dblp().query("Christos Faloutsos", 1);
    assert_eq!(results[0].summary.len(), 1);
    assert_eq!(results[0].summary.node(results[0].summary.root()).tuple, results[0].tds);
}

#[test]
fn huge_l_caps_at_complete_os() {
    let results = dblp().query_with(
        "Petros Faloutsos",
        QueryOptions { l: 100_000, prelim: false, ..QueryOptions::default() },
    );
    let r = &results[0];
    assert_eq!(r.result.len(), r.input_os_size);
}

#[test]
fn complete_os_matches_engine_context_path() {
    // The engine's context produces the same OS as the standalone API.
    let e = dblp();
    let results = e.query("Michalis Faloutsos", 5);
    let tds = results[0].tds;
    let ctx = e.context(tds.table);
    let os = generate_os(&ctx, tds, None, OsSource::DataGraph);
    assert!(os.len() >= results[0].input_os_size);
    os.validate().unwrap();
}

/// Helper: RowId constructor without importing the storage crate directly
/// in every test.
fn sizel_storage_row(i: u32) -> sizel_storage::RowId {
    sizel_storage::RowId(i)
}
