//! Cross-crate invariants of the reproduction pipeline, checked on the
//! quick-scale workbench: the qualitative claims of Section 6 must hold on
//! every build, not just in the one-off EXPERIMENTS.md run.

use std::sync::OnceLock;

use sizel::{
    generate_os, generate_prelim, BottomUp, DpKnapsack, OsSource, SizeLAlgorithm, TopPath,
};
use sizel_bench::{Bench, GdsKind, SETTINGS};

fn bench() -> &'static Bench {
    static B: OnceLock<Bench> = OnceLock::new();
    B.get_or_init(|| Bench::new(true))
}

#[test]
fn workbench_has_all_settings_and_gds() {
    let b = bench();
    assert_eq!(SETTINGS.len(), 4);
    for kind in GdsKind::ALL {
        for i in 0..SETTINGS.len() {
            assert!(b.gds(kind, i).len() >= 3);
        }
    }
}

#[test]
fn section_6_2_quality_ordering_holds_on_average() {
    // Top-Path >= Bottom-Up on average; both within [~70%, 100%] of the
    // optimum (the paper's Figure 9 envelope).
    let b = bench();
    for kind in GdsKind::ALL {
        let ctx = b.ctx(kind, 0);
        let samples = b.samples(kind, 4);
        for l in [5usize, 15, 30] {
            let mut tp_total = 0.0;
            let mut bu_total = 0.0;
            let mut count = 0;
            for &tds in &samples {
                let os = generate_os(&ctx, tds, Some(l as u32 - 1), OsSource::DataGraph);
                if os.len() <= l {
                    continue;
                }
                count += 1;
                let opt = DpKnapsack.compute(&os, l).importance.max(1e-12);
                tp_total += TopPath.compute(&os, l).importance / opt;
                bu_total += BottomUp.compute(&os, l).importance / opt;
            }
            if count == 0 {
                continue;
            }
            let tp = tp_total / count as f64;
            let bu = bu_total / count as f64;
            assert!(tp >= bu - 0.02, "{} l={l}: TP {tp} vs BU {bu}", kind.label());
            assert!(bu > 0.7, "{} l={l}: BU quality {bu} below the paper's envelope", kind.label());
            assert!(tp <= 1.0 + 1e-9);
        }
    }
}

#[test]
fn prelim_contains_top_l_and_shrinks_input() {
    let b = bench();
    for kind in GdsKind::ALL {
        let ctx = b.ctx(kind, 0);
        let tds = b.samples(kind, 1)[0];
        for l in [5usize, 15] {
            let complete = generate_os(&ctx, tds, Some(l as u32 - 1), OsSource::DataGraph);
            let (prelim, _) = generate_prelim(&ctx, tds, l, OsSource::DataGraph);
            assert!(prelim.len() <= complete.len(), "{}", kind.label());
            // Definition 2: the top-l local importances all appear in the
            // prelim (compare weight multisets; ties make tuple-level
            // checks ambiguous).
            let mut cw: Vec<f64> = complete.iter().map(|(_, n)| n.weight).collect();
            cw.sort_by(|a, b| b.total_cmp(a));
            let mut pw: Vec<f64> = prelim.iter().map(|(_, n)| n.weight).collect();
            pw.sort_by(|a, b| b.total_cmp(a));
            for i in 0..l.min(cw.len()).min(pw.len()) {
                assert!(
                    (cw[i] - pw[i]).abs() < 1e-9,
                    "{} l={l}: {}-th largest weight differs: {} vs {}",
                    kind.label(),
                    i,
                    cw[i],
                    pw[i]
                );
            }
        }
    }
}

#[test]
fn database_mode_prelim_reads_fewer_tuples() {
    let b = bench();
    let ctx = b.ctx(GdsKind::Supplier, 0);
    let db = b.db(sizel_bench::DbKind::Tpch);
    let tds = b.samples(GdsKind::Supplier, 1)[0];
    let l = 10;
    db.access().reset();
    let _ = generate_os(&ctx, tds, Some(l as u32 - 1), OsSource::Database);
    let complete = db.access().snapshot();
    db.access().reset();
    let _ = generate_prelim(&ctx, tds, l, OsSource::Database);
    let prelim = db.access().snapshot();
    assert!(
        prelim.tuples <= complete.tuples,
        "prelim reads {} tuples vs complete {}",
        prelim.tuples,
        complete.tuples
    );
}

#[test]
fn gds_annotations_are_internally_consistent() {
    // max_ri = max over the relation's global scores x affinity;
    // mmax_ri = max over descendants.
    let b = bench();
    for kind in GdsKind::ALL {
        let gds = b.gds(kind, 0);
        let scores = b.scores(kind.db(), 0);
        for (_, node) in gds.iter() {
            let expect = scores.table_max(node.relation) * node.affinity;
            assert!((node.max_ri - expect).abs() < 1e-9, "{} {}", kind.label(), node.label);
            let child_max = node
                .children
                .iter()
                .map(|&c| {
                    let ch = gds.node(c);
                    ch.max_ri.max(ch.mmax_ri)
                })
                .fold(0.0f64, f64::max);
            assert!((node.mmax_ri - child_max).abs() < 1e-9);
        }
    }
}

#[test]
fn effectiveness_anchor_setting_wins_at_large_l() {
    // GA1-d1 is the evaluator anchor, so its effectiveness must dominate
    // GA2-d1 for larger summaries (the paper's headline ordering).
    let b = bench();
    let panel = sizel::EvaluatorPanel { n_evaluators: 4, ..Default::default() };
    let l = 20;
    let mut anchor = 0.0;
    let mut ga2 = 0.0;
    let mut count = 0;
    for &tds in &b.samples(GdsKind::Author, 4) {
        let ref_ctx = b.ctx(GdsKind::Author, 0);
        let ref_os = generate_os(&ref_ctx, tds, Some(l as u32 - 1), OsSource::DataGraph);
        if ref_os.len() < 2 * l {
            continue;
        }
        count += 1;
        let computed_anchor = DpKnapsack.compute(&ref_os, l);
        anchor += panel.panel_effectiveness(&ref_os, &computed_anchor, l);
        let ga2_ctx = b.ctx(GdsKind::Author, 3);
        let ga2_os = generate_os(&ga2_ctx, tds, Some(l as u32 - 1), OsSource::DataGraph);
        let computed_ga2 = DpKnapsack.compute(&ga2_os, l);
        ga2 += panel.panel_effectiveness(&ref_os, &computed_ga2, l);
    }
    assert!(count > 0, "need at least one large Author OS");
    assert!(anchor >= ga2, "GA1-d1 effectiveness {anchor} must dominate GA2-d1 {ga2} at l={l}");
}

#[test]
fn cross_source_os_equality_everywhere() {
    let b = bench();
    for kind in GdsKind::ALL {
        let ctx = b.ctx(kind, 0);
        let tds = b.samples(kind, 1)[0];
        let graph = generate_os(&ctx, tds, Some(9), OsSource::DataGraph);
        let database = generate_os(&ctx, tds, Some(9), OsSource::Database);
        assert_eq!(graph.len(), database.len(), "{}", kind.label());
        assert!((graph.total_weight() - database.total_weight()).abs() < 1e-9);
    }
}

#[test]
fn figures_render_without_panicking_on_quick_scale() {
    // Smoke-run every harness figure at quick scale (the heavy ones are
    // exercised by the repro binary / benches at full scale).
    let b = bench();
    for f in [
        sizel_bench::figures::calibrate,
        sizel_bench::figures::show_gds,
        sizel_bench::figures::show_ga,
        sizel_bench::figures::example45,
        sizel_bench::figures::snippet_baseline,
        sizel_bench::figures::datagraph_stats,
        sizel_bench::figures::consecutive,
        sizel_bench::figures::wordbudget,
    ] {
        let out = f(b);
        assert!(!out.is_empty());
    }
}
