//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access to a crate registry, so this
//! workspace vendors the subset of criterion's API its benches use:
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion::benchmark_group`],
//! `sample_size` / `warm_up_time` / `measurement_time`, `bench_with_input`
//! with a [`BenchmarkId`], and [`Bencher::iter`].
//!
//! It is a real (if simple) harness, not a no-op: each benchmark is warmed
//! up, then timed over `sample_size` samples whose iteration counts are
//! scaled to fill `measurement_time`, and the per-iteration mean / min /
//! max are printed in a `cargo bench`-like format. There are no HTML
//! reports, no outlier analysis, and no statistical regression testing —
//! swap the workspace dependency back to crates.io for those.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// An opaque-to-the-optimizer identity function; re-exported for
/// compatibility with code that imports it from criterion rather than
/// `std::hint`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// The top-level harness handle passed to every bench function.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` appends `--bench` plus any user filter; everything
        // that is not a flag is treated as a substring filter, like real
        // criterion.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            filter: self.filter.clone(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(1),
            _marker: std::marker::PhantomData,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let group = self.benchmark_group(id);
        group.run(String::new(), &mut f);
        group.finish();
    }
}

/// A group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    filter: Option<String>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    // Ties the group to the parent for API parity with real criterion.
    _marker: std::marker::PhantomData<&'a mut Criterion>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// How long to warm up before timing.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Target total measurement time across samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks `f` with the given input, labeled by `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.0, &mut |b| f(b, input));
        self
    }

    /// Benchmarks `f` with no extra input.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), &mut f);
        self
    }

    fn run(&self, id: String, f: &mut dyn FnMut(&mut Bencher)) {
        let full = if id.is_empty() { self.name.clone() } else { format!("{}/{}", self.name, id) };
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        // Warm-up: run once to learn the per-iteration cost, then repeat
        // until the warm-up budget is spent.
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        let warm_start = Instant::now();
        let mut per_iter = loop {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            let t = b.elapsed.max(Duration::from_nanos(1)) / b.iters.max(1) as u32;
            if warm_start.elapsed() >= self.warm_up_time {
                break t;
            }
        };
        if per_iter.is_zero() {
            per_iter = Duration::from_nanos(1);
        }
        // Measurement: spread the budget across samples.
        let per_sample = self.measurement_time / self.sample_size as u32;
        let iters = (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.iters = iters;
            b.elapsed = Duration::ZERO;
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters as f64);
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{full:<60} time: [{} {} {}]  ({} samples × {iters} iters)",
            fmt_time(min),
            fmt_time(mean),
            fmt_time(max),
            samples.len(),
        );
    }

    /// Ends the group (printing happens eagerly; kept for API parity).
    pub fn finish(self) {}
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// A function + parameter label, e.g. `BenchmarkId::new("top_path", 10)`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }

    /// Parameter-only id within a group.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Passed to the benchmark closure; measures the timed region.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the harness-chosen iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a bench group function list, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
