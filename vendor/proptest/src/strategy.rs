//! The [`Strategy`] trait and the built-in strategies the workspace uses:
//! integer/float ranges, `any::<T>()`, tuples, and the `prop_map` /
//! `prop_flat_map` combinators.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::Rng;

/// A generator of values, mirroring `proptest::strategy::Strategy` minus
/// shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut Rng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Derives a second strategy from each generated value and samples it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the concrete strategy type, mirroring `Strategy::boxed`.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// See [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

trait DynStrategy<T> {
    fn dyn_sample(&self, rng: &mut Rng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_sample(&self, rng: &mut Rng) -> S::Value {
        self.sample(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut Rng) -> T {
        self.0.dyn_sample(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut Rng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut Rng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// `any::<uint>()`: the full unsigned domain.
#[derive(Clone, Copy, Debug)]
pub struct AnyUint<T>(pub PhantomData<T>);

/// `any::<int>()`: the full signed domain.
#[derive(Clone, Copy, Debug)]
pub struct AnyInt<T>(pub PhantomData<T>);

/// `any::<bool>()`.
#[derive(Clone, Copy, Debug)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn sample(&self, rng: &mut Rng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! uint_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for AnyUint<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut Rng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
uint_strategies!(u8, u16, u32, u64, usize);

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for AnyInt<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut Rng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(rng.below(span + 1) as i64) as $t
            }
        }
    )*};
}
int_strategies!(i8, i16, i32, i64, isize);

macro_rules! float_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut Rng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
