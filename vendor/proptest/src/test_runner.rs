//! Case configuration, failure type, and the deterministic RNG stream.

use std::fmt;

/// Mirror of `proptest::test_runner::Config` — only `cases` is honored.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// Why a test case failed.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A plain assertion failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// xoshiro256** seeded by SplitMix64 from a string hash: deterministic per
/// test name, good enough statistical quality for property generation.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Derives the stream for a named property test.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name gives the SplitMix64 seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut sm = h;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Rng { s: [next(), next(), next(), next()] }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounded draw (Lemire); bias is negligible for the
        // small bounds property tests use.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
