//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no network access to a crate registry, so this
//! workspace vendors the subset of proptest's API that its property tests
//! actually use: the [`proptest!`] macro, range / tuple / `any` / collection
//! strategies, `prop_map` / `prop_flat_map` combinators, and the
//! `prop_assert*` family.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports the case number and the seed;
//!   inputs are reproducible from those (generation is deterministic) but
//!   are not minimized.
//! * **Deterministic seeding.** Each test derives its RNG stream from the
//!   test function's name, so runs are bit-reproducible across platforms —
//!   which the workspace prefers for its experiment tables anyway.
//!
//! Swap this out for the real crate by pointing the workspace dependency
//! back at crates.io; the call sites need no changes.

pub mod collection;
pub mod strategy;
pub mod test_runner;

use strategy::Strategy;

/// Generates a strategy producing any value of `T` (full value range).
pub fn arbitrary<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Types with a canonical "whole domain" strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = strategy::AnyUint<$t>;
            fn arbitrary() -> Self::Strategy {
                strategy::AnyUint(std::marker::PhantomData)
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = strategy::AnyInt<$t>;
            fn arbitrary() -> Self::Strategy {
                strategy::AnyInt(std::marker::PhantomData)
            }
        }
    )*};
}
arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    type Strategy = strategy::AnyBool;
    fn arbitrary() -> Self::Strategy {
        strategy::AnyBool
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Strategy for any value of `T`, e.g. `any::<u32>()`.
    pub fn any<T: crate::Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Strategy that always yields a clone of the given value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut crate::test_runner::Rng) -> T {
            self.0.clone()
        }
    }
}

/// The macro behind every property test: a restricted re-implementation of
/// `proptest::proptest!` supporting the `fn name(arg in strategy, ...)`
/// form with an optional leading `#![proptest_config(..)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg($cfg) $($rest)*);
    };
    (@cfg($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::Rng::from_name(stringify!($name));
                for case in 0..cfg.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&$strat, &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} of `{}` failed: {}",
                            case + 1, cfg.cases, stringify!($name), e,
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args..)`: fail the
/// current case without unwinding through foreign frames.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        // stringify! output may contain braces; pass it as an argument, not
        // as the format string.
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert_eq!(a, b)` with optional trailing format message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {:?} == {:?}: {}", a, b, format!($($fmt)*)
        );
    }};
}

/// `prop_assert_ne!(a, b)` with optional trailing format message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: {:?} != {:?}: {}", a, b, format!($($fmt)*)
        );
    }};
}

/// `prop_assume!(cond)`: skip the case when the precondition fails. The
/// stand-in treats a skipped case as a pass (no global rejection budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}
